"""Explicit-state model checker for *sequential* core programs.

This is the stand-in for SLAM in the KISS architecture (Figure 1): a
checker that understands only sequential semantics.  It performs a
breadth-first exploration of the reachable configuration graph with
canonical state hashing, so error traces are shortest-first and loops /
repeated allocation converge.

The input program must be sequential: ``async`` statements are rejected
(sequentialize with :mod:`repro.core.transform` first).  ``atomic``
regions are allowed and are simply executed indivisibly — in a sequential
program they have no observable effect, but KISS output keeps them so the
backend does not need a special pre-pass.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro import cancel, obs
from repro.cfg.build import build_program_cfg
from repro.cfg.graph import Node, ProgramCfg
from repro.lang.ast import Program
from repro.seqcheck.interp import Interp, ResourceLimit, Violation, World
from repro.seqcheck.state import Frame, FuncVal, PtrVal, Store, default_value
from repro.seqcheck.trace import CheckResult, CheckStats, CheckStatus, TraceStep


class _ChainViolation(Exception):
    """A violation inside a compressed deterministic chain, carrying the
    chain's trace steps (the failing one last)."""

    def __init__(self, violation: Violation, steps: Tuple[TraceStep, ...]):
        super().__init__(str(violation))
        self.violation = violation
        self.steps = steps


class SequentialChecker:
    """BFS explicit-state reachability for sequential programs."""

    def __init__(
        self,
        pcfg: ProgramCfg,
        max_states: int = 500_000,
        max_depth: int = 1_000_000,
        compress_chains: bool = True,
        collect_reached: bool = False,
    ):
        self.pcfg = pcfg
        self.prog = pcfg.program
        self.interp = Interp(pcfg)
        self.max_states = max_states
        self.max_depth = max_depth
        # In a sequential program there is no interleaving to preserve, so
        # maximal chains of deterministic simple nodes (single successor)
        # are executed as one BFS transition; every executed node is still
        # recorded in the trace, so error traces and the KISS trace mapper
        # are unaffected.
        self.compress_chains = compress_chains
        # Witness emission: collect every canonical state the exploration
        # passes through — BFS frontier states plus the interior states of
        # compressed chains, so the set is closed under *single-step*
        # successors (what the independent validator re-checks).
        self.reached: Optional[set] = set() if collect_reached else None

    MAX_CHAIN = 64

    # -- public API -------------------------------------------------------------

    def check(self) -> CheckResult:
        # Counters are flushed once from the stats the BFS already keeps,
        # so the exploration loop itself carries no observability hooks.
        with obs.span("explicit", max_states=self.max_states):
            result = self._check()
        obs.inc("states_explored", result.stats.states)
        obs.inc("transitions", result.stats.transitions)
        return result

    def _check(self) -> CheckResult:
        stats = CheckStats()
        freeze = self.interp.freezer.freeze
        init = self._initial_world()
        init_key = freeze(init.store, init.stacks)
        if self.reached is not None:
            self.reached.add(init_key)
        parents: Dict[Tuple, Optional[Tuple[Tuple, Tuple[TraceStep, ...]]]] = {init_key: None}
        queue = deque([(init, init_key, 0)])
        stats.states = 1
        while queue:
            cancel.poll()
            world, key, depth = queue.popleft()
            stats.max_depth = max(stats.max_depth, depth)
            if depth >= self.max_depth:
                continue
            try:
                successors = self._successors(world)
                if self.compress_chains:
                    successors = [self._compress(succ, step) for succ, step in successors]
                else:
                    successors = [(succ, (step,)) for succ, step in successors]
            except _ChainViolation as cv:
                trace = self._build_trace(parents, key) + list(cv.steps)
                return CheckResult(
                    CheckStatus.ERROR,
                    violation_kind=cv.violation.kind,
                    message=cv.violation.message,
                    trace=trace,
                    stats=stats,
                )
            except Violation as v:
                step = self._step_for(world, v)
                trace = self._build_trace(parents, key) + [step]
                return CheckResult(
                    CheckStatus.ERROR,
                    violation_kind=v.kind,
                    message=v.message,
                    trace=trace,
                    stats=stats,
                )
            except ResourceLimit as r:
                return CheckResult(CheckStatus.EXHAUSTED, message=str(r), stats=stats)
            for succ, steps in successors:
                if succ is None:
                    continue  # chain died on a failed assume
                stats.transitions += 1
                succ_key = freeze(succ.store, succ.stacks)
                if self.reached is not None:
                    self.reached.add(succ_key)
                if succ_key in parents:
                    continue
                parents[succ_key] = (key, steps)
                stats.states += 1
                if stats.states > self.max_states:
                    return CheckResult(
                        CheckStatus.EXHAUSTED,
                        message=f"state budget of {self.max_states} exceeded",
                        stats=stats,
                    )
                queue.append((succ, succ_key, depth + 1))
        return CheckResult(CheckStatus.SAFE, stats=stats)

    def _compress(
        self, world: World, first_step: TraceStep
    ) -> Tuple[Optional[World], Tuple[TraceStep, ...]]:
        """Execute the maximal deterministic chain of simple nodes from
        ``world``; returns (final world, steps) — the world is None when a
        failed ``assume`` killed the path.  A violation mid-chain raises
        :class:`_ChainViolation` carrying the chain's steps (including the
        failing one) for trace reconstruction."""
        steps = [first_step]
        for _ in range(self.MAX_CHAIN):
            if self.reached is not None:
                # Chain-interior states are observable single-step
                # successors; record them so the witness set stays closed.
                self.reached.add(self.interp.freezer.freeze(world.store, world.stacks))
            stack = world.stacks[0]
            if not stack:
                break
            frame = stack[-1]
            node = self.pcfg.cfg(frame.func).node(frame.node)
            if node.kind not in ("skip", "assign", "malloc", "assert", "assume"):
                break
            if len(node.succs) != 1:
                break
            step = TraceStep(frame.func, node.id, node.origin)
            try:
                ok = self.interp.exec_simple(node, frame, world.store, world.frames())
            except Violation as v:
                raise _ChainViolation(v, tuple(steps) + (step,)) from None
            steps.append(step)
            if not ok:
                return None, tuple(steps)
            frame.node = node.succs[0]
        return world, tuple(steps)

    # -- construction --------------------------------------------------------------

    def _initial_world(self) -> World:
        store = Store()
        for name, g in self.prog.globals.items():
            if g.init is not None:
                store.globals[name] = self.interp.eval_const_expr(g.init)
            else:
                store.globals[name] = default_value(g.type)
        entry = self.prog.function(self.pcfg.entry)
        if entry.params:
            raise Violation("entry", f"entry function '{entry.name}' must take no parameters")
        frame = self._fresh_frame(entry.name, [], store)
        return World(store, [[frame]])

    def _fresh_frame(self, func_name: str, args: List, store: Store) -> Frame:
        decl = self.prog.function(func_name)
        if len(args) != len(decl.params):
            raise Violation(
                "arity", f"call of {func_name} with {len(args)} args (expected {len(decl.params)})"
            )
        locals_: Dict[str, object] = {}
        for p, a in zip(decl.params, args):
            locals_[p.name] = a
        for name, typ in decl.locals.items():
            locals_[name] = default_value(typ)
        return Frame(func_name, self.pcfg.cfg(func_name).entry, locals_, store.fresh_frame_id())

    # -- transition relation ---------------------------------------------------------

    def _current_node(self, world: World) -> Node:
        frame = world.stacks[0][-1]
        return self.pcfg.cfg(frame.func).node(frame.node)

    def _step_for(self, world: World, v: Violation) -> TraceStep:
        frame = world.stacks[0][-1]
        node = v.node or self._current_node(world)
        return TraceStep(frame.func, node.id, node.origin)

    def _successors(self, world: World) -> List[Tuple[World, TraceStep]]:
        stack = world.stacks[0]
        if not stack:
            return []  # program terminated
        frame = stack[-1]
        cfg = self.pcfg.cfg(frame.func)
        node = cfg.node(frame.node)
        step = TraceStep(frame.func, node.id, node.origin)
        kind = node.kind

        if kind == "async":
            raise Violation(
                "not-sequential",
                "async statement in a sequential program — run the KISS transformation first",
                node,
            )

        if kind == "return":
            return self._exec_return(world, node, step)

        if kind == "call":
            return self._exec_call(world, node, step)

        if kind == "atomic":
            out: List[Tuple[World, TraceStep]] = []
            for w in self.interp.run_atomic(world, 0, node):
                for succ_id in node.succs:
                    w2 = w.clone() if len(node.succs) > 1 else w
                    w2.stacks[0][-1].node = succ_id
                    out.append((w2, step))
            return out

        # simple nodes: skip / assign / malloc / assert / assume
        w = world.clone()
        f = w.stacks[0][-1]
        ok = self.interp.exec_simple(node, f, w.store, w.frames())
        if not ok:
            return []  # infeasible path (failed assume)
        out = []
        for succ_id in node.succs:
            w2 = w.clone() if len(node.succs) > 1 else w
            w2.stacks[0][-1].node = succ_id
            out.append((w2, step))
        return out

    def _exec_call(self, world: World, node: Node, step: TraceStep) -> List[Tuple[World, TraceStep]]:
        stmt = node.stmt
        w = world.clone()
        frame = w.stacks[0][-1]
        callee = self._resolve_callee(stmt.func.name, frame, w.store, node)
        args = [self.interp.eval_atom(a, frame, w.store) for a in stmt.args]
        new_frame = self._fresh_frame(callee, args, w.store)
        w.stacks[0].append(new_frame)
        return [(w, step)]

    def _resolve_callee(self, name: str, frame: Frame, store: Store, node: Node) -> str:
        if name in frame.locals or name in store.globals:
            v = frame.locals.get(name, store.globals.get(name))
            if not isinstance(v, FuncVal):
                raise Violation("bad-call", f"call through non-function value {v!r}", node)
            if v.name not in self.prog.functions:
                raise Violation("undef-call", f"call of undefined function value {v}", node)
            return v.name
        if name in self.prog.functions:
            return name
        raise Violation("undef-call", f"call of unknown function '{name}'", node)

    def _exec_return(self, world: World, node: Node, step: TraceStep) -> List[Tuple[World, TraceStep]]:
        w = world.clone()
        stack = w.stacks[0]
        frame = stack[-1]
        stmt = node.stmt
        decl = self.prog.function(frame.func)
        if stmt.value is not None:
            value = self.interp.eval_atom(stmt.value, frame, w.store)
        elif decl.ret is not None:
            value = default_value(decl.ret)  # fell off the end of a non-void fn
        else:
            value = None
        stack.pop()
        if not stack:
            return [(w, step)]  # entry returned: terminal state (safe leaf)
        caller = stack[-1]
        call_node = self.pcfg.cfg(caller.func).node(caller.node)
        if call_node.kind != "call":
            raise Violation("internal", "return into a non-call continuation", node)
        call_stmt = call_node.stmt
        if call_stmt.lhs is not None:
            if value is None:
                raise Violation("void-result", f"void result of {frame.func} used as a value", node)
            self.interp._write_var(call_stmt.lhs.name, value, caller, w.store)
        out: List[Tuple[World, TraceStep]] = []
        for succ_id in call_node.succs:
            w2 = w.clone() if len(call_node.succs) > 1 else w
            w2.stacks[0][-1].node = succ_id
            out.append((w2, step))
        return out

    # -- trace reconstruction -----------------------------------------------------------

    @staticmethod
    def _build_trace(parents: Dict, key: Tuple) -> List[TraceStep]:
        edges: List[Tuple[TraceStep, ...]] = []
        cur = key
        while parents.get(cur) is not None:
            prev, steps = parents[cur]
            edges.append(steps)
            cur = prev
        edges.reverse()
        return [step for chunk in edges for step in chunk]


def check_sequential(
    prog: Program,
    max_states: int = 500_000,
    max_depth: int = 1_000_000,
) -> CheckResult:
    """Model-check a sequential core program for safety violations."""
    pcfg = build_program_cfg(prog)
    return SequentialChecker(pcfg, max_states=max_states, max_depth=max_depth).check()
