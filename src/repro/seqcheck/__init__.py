"""Sequential checking backends (the SLAM role in Figure 1).

* :mod:`~repro.seqcheck.explicit` — explicit-state BFS model checker,
  complete for finite-data programs (the default backend);
* the SLAM-lite tier: :mod:`~repro.seqcheck.sat` (DPLL),
  :mod:`~repro.seqcheck.decide` (bit-blasting),
  :mod:`~repro.seqcheck.boolprog` / :mod:`~repro.seqcheck.bebop`
  (boolean programs + RHS summaries),
  :mod:`~repro.seqcheck.abstraction` (predicate abstraction), and
  :mod:`~repro.seqcheck.cegar` (the refinement loop).
"""

from .explicit import SequentialChecker, check_sequential
from .trace import CheckResult, CheckStats, CheckStatus, TraceStep

__all__ = [
    "SequentialChecker",
    "check_sequential",
    "CheckResult",
    "CheckStats",
    "CheckStatus",
    "TraceStep",
]
