"""Predicate abstraction: core programs → boolean programs (SLAM's C2BP).

Given a set of predicates, each scalar core program statement becomes a
parallel assignment over predicate-valued boolean variables, computed
with weakest preconditions and cube search through the bit-blasting
decision procedure:

* ``x := e`` updates every predicate ``p`` to
  ``F(wp) ? T : (F(!wp) ? F : *)`` where ``wp = p[x := e]`` and ``F(φ)``
  is the weakest disjunction of cubes (size ≤ ``max_cube``) over the
  current predicates that implies ``φ``;
* ``assume(c)`` becomes ``assume(!F(!c))`` (an over-approximation);
* ``assert(c)`` becomes ``assert(F(c))`` (an under-approximation, so an
  abstract failure over-approximates the concrete failures — the CEGAR
  loop then validates).

Scope: the *scalar fragment* — ``int``/``bool`` variables, no pointers,
fields, or ``malloc`` (SLAM's pointer support is out of scope for this
tier; the explicit backend covers heap-manipulating programs).  Calls
are supported conservatively: global predicates flow through; predicates
mentioning a call's result are havocked.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    Atomic,
    Binary,
    Block,
    BoolLit,
    BoolType,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    IntLit,
    IntType,
    Iter,
    Malloc,
    NullLit,
    Program,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    walk_exprs,
)

from .boolprog import (
    BAnd,
    BAssert,
    BAssign,
    BAssume,
    BCall,
    BConst,
    BExpr,
    BGoto,
    BNondet,
    BNot,
    BOr,
    BProc,
    BProgram,
    BReturn,
    BSkip,
    BStmt,
    bor_many,
)
from .decide import DecideError, entails


class AbstractionError(Exception):
    pass


# -- expression utilities -------------------------------------------------------


def subst(e: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-free substitution of a variable in an expression."""
    if isinstance(e, Var):
        return replacement if e.name == name else e
    if isinstance(e, Unary):
        return Unary(e.op, subst(e.operand, name, replacement))
    if isinstance(e, Binary):
        return Binary(e.op, subst(e.left, name, replacement), subst(e.right, name, replacement))
    return e


def expr_vars(e: Expr) -> Set[str]:
    """The variable names occurring in ``e``."""
    return {x.name for x in walk_exprs(e) if isinstance(x, Var)}


def atoms_of(e: Expr) -> List[Expr]:
    """Atomic predicates of a boolean expression (comparisons, bool vars)."""
    if isinstance(e, Binary) and e.op in ("&&", "||"):
        return atoms_of(e.left) + atoms_of(e.right)
    if isinstance(e, Unary) and e.op == "!":
        return atoms_of(e.operand)
    if isinstance(e, BoolLit):
        return []
    return [e]


@dataclass
class PredicateSet:
    """Predicates in scope: globals-only ones plus per-function ones."""

    global_preds: List[Expr] = field(default_factory=list)
    local_preds: Dict[str, List[Expr]] = field(default_factory=dict)

    def for_function(self, fname: str) -> List[Expr]:
        return self.global_preds + self.local_preds.get(fname, [])

    def add(self, prog: Program, fname: str, pred: Expr) -> bool:
        """Add ``pred`` to the right scope; returns False if already known."""
        key = str(pred)
        names = expr_vars(pred)
        is_global = names <= set(prog.globals)
        bucket = self.global_preds if is_global else self.local_preds.setdefault(fname, [])
        scope = self.for_function(fname)
        if any(str(p) == key for p in scope):
            return False
        bucket.append(pred)
        return True

    def count(self) -> int:
        return len(self.global_preds) + sum(len(v) for v in self.local_preds.values())


class Abstractor:
    """One abstraction pass over a program with a fixed predicate set."""

    def __init__(self, prog: Program, preds: PredicateSet, width: int = 8, max_cube: int = 3):
        self.prog = prog
        self.preds = preds
        self.width = width
        self.max_cube = max_cube
        self._entail_cache: Dict[Tuple, bool] = {}
        # provenance: (proc name, body index) -> original core Stmt or None
        self.provenance: Dict[Tuple[str, int], Optional[Stmt]] = {}

    # -- types ------------------------------------------------------------------

    def _types_for(self, func: FuncDecl) -> Dict[str, Type]:
        types: Dict[str, Type] = {g.name: g.type for g in self.prog.globals.values()}
        for p in func.params:
            types[p.name] = p.type
        types.update(func.locals)
        for t in types.values():
            if not isinstance(t, (IntType, BoolType)):
                raise AbstractionError(
                    "predicate abstraction supports the scalar fragment only "
                    f"(found a {t} variable); use the explicit backend"
                )
        return types

    # -- cube search ----------------------------------------------------------------

    def _entails(self, ants: Tuple[Expr, ...], goal: Expr, types: Dict[str, Type]) -> bool:
        key = (tuple(str(a) for a in ants), str(goal))
        if key not in self._entail_cache:
            try:
                self._entail_cache[key] = entails(list(ants), goal, types, self.width)
            except DecideError:
                self._entail_cache[key] = False  # unknown -> not provable
        return self._entail_cache[key]

    def _relevant_indices(self, goal: Expr, scope: List[Expr]) -> List[int]:
        """Cone of influence: scope predicates variable-connected to the
        goal (transitively, through shared variables).  A cube with a
        literal from a disjoint variable component implies the goal only
        if its relevant sub-cube does (interpolation over disjoint
        vocabularies) or the cube is unsatisfiable — either way the
        disconnected predicates contribute nothing, and skipping them
        keeps the cube search polynomial in the *component* size rather
        than the whole predicate set."""
        goal_vars = set(expr_vars(goal))
        pvars = [expr_vars(p) for p in scope]
        chosen: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for i, pv in enumerate(pvars):
                if i not in chosen and pv & goal_vars:
                    chosen.add(i)
                    goal_vars |= pv
                    changed = True
        return sorted(chosen)

    def weakest_cover(
        self, goal: Expr, scope: List[Expr], bvars: List[str], types: Dict[str, Type]
    ) -> BExpr:
        """``F(goal)``: disjunction of cubes over ``scope`` implying ``goal``."""
        if self._entails((), goal, types):
            return BConst(True)
        found: List[Tuple[Tuple[int, ...], Tuple[bool, ...]]] = []
        disjuncts: List[BExpr] = []
        indices = self._relevant_indices(goal, scope)
        for size in range(1, min(self.max_cube, len(indices)) + 1):
            for combo in itertools.combinations(indices, size):
                for signs in itertools.product((True, False), repeat=size):
                    if self._subsumed(combo, signs, found):
                        continue
                    ants = tuple(
                        scope[i] if pos else Unary("!", scope[i])
                        for i, pos in zip(combo, signs)
                    )
                    if self._entails(ants, goal, types):
                        found.append((combo, signs))
                        lits = [
                            BVarOrNot(bvars[i], pos) for i, pos in zip(combo, signs)
                        ]
                        cube: BExpr = lits[0]
                        for l in lits[1:]:
                            cube = BAnd(cube, l)
                        disjuncts.append(cube)
        return bor_many(disjuncts)

    @staticmethod
    def _subsumed(combo, signs, found) -> bool:
        cube = dict(zip(combo, signs))
        for fc, fs in found:
            if all(i in cube and cube[i] == s for i, s in zip(fc, fs)):
                return True
        return False

    # -- statement abstraction ----------------------------------------------------------

    def abstract(self) -> BProgram:
        bprog = BProgram(entry=self.prog.entry)
        bprog.globals = [f"G{i}" for i in range(len(self.preds.global_preds))]
        for func in self.prog.functions.values():
            bprog.procs[func.name] = self._abstract_function(func)
        bprog.validate()
        return bprog

    def _abstract_function(self, func: FuncDecl) -> BProc:
        types = self._types_for(func)
        scope = self.preds.for_function(func.name)
        nglobal = len(self.preds.global_preds)
        bvars = [f"G{i}" for i in range(nglobal)] + [
            f"P{i}" for i in range(len(scope) - nglobal)
        ]
        proc = BProc(func.name, params=[], locals=[b for b in bvars if b.startswith("P")])
        ctx = _FnAbs(self, func, types, scope, bvars)
        body: List[BStmt] = []
        self._emit_init_prologue(func, scope, bvars, nglobal, types, body)
        ctx.emit_block(func.body, body)
        proc.body = body
        for i, s in enumerate(body):
            self.provenance[(func.name, i)] = getattr(s, "origin_stmt", None)
        return proc

    def _emit_init_prologue(
        self, func: FuncDecl, scope, bvars, nglobal: int, types, body: List[BStmt]
    ) -> None:
        """Set each predicate variable to its truth in the initial concrete
        state (Bebop seeds everything False, which would otherwise exclude
        the real initial state — an unsound abstraction).

        Local predicates are initialized in every procedure (our concrete
        semantics default-initializes locals); predicates mentioning
        parameters get ``*``.  Global predicates are initialized in the
        entry procedure only — elsewhere their values flow in from the
        caller.
        """
        param_names = {p.name for p in func.params}
        targets: List[str] = []
        exprs: List[BExpr] = []
        for i, p in enumerate(scope):
            is_global_pred = i < nglobal
            if is_global_pred and func.name != self.prog.entry:
                continue
            names = expr_vars(p)
            if names & param_names:
                val: BExpr = BNondet()
            else:
                truth = self._initial_truth(func, p, types)
                val = BNondet() if truth is None else BConst(truth)
            targets.append(bvars[i])
            exprs.append(val)
        if targets:
            body.append(BAssign(targets=targets, exprs=exprs))

    def _initial_truth(self, func: FuncDecl, pred: Expr, types) -> Optional[bool]:
        """Evaluate ``pred`` under the initial values of its variables."""
        ants: List[Expr] = []
        for name in expr_vars(pred):
            init = self._initial_value_expr(func, name)
            if init is None:
                return None
            ants.append(Binary("==", Var(name), init))
        if self._entails(tuple(ants), pred, types):
            return True
        if self._entails(tuple(ants), Unary("!", pred), types):
            return False
        return None

    def _initial_value_expr(self, func: FuncDecl, name: str) -> Optional[Expr]:
        if name in self.prog.globals:
            g = self.prog.globals[name]
            if g.init is not None:
                return g.init if isinstance(g.init, (IntLit, BoolLit, Unary)) else None
            return IntLit(0) if isinstance(g.type, IntType) else BoolLit(False)
        t = func.locals.get(name)
        if t is None:
            return None
        return IntLit(0) if isinstance(t, IntType) else BoolLit(False)


def BVarOrNot(name: str, positive: bool) -> BExpr:
    """A boolean-program literal: the variable or its negation."""
    from .boolprog import BVar

    return BVar(name) if positive else BNot(BVar(name))


class _FnAbs:
    """Per-function emission context (labels, predicate update synthesis)."""

    def __init__(self, outer: Abstractor, func: FuncDecl, types, scope, bvars):
        self.outer = outer
        self.func = func
        self.types = types
        self.scope = scope  # predicate expressions, index-aligned with bvars
        self.bvars = bvars
        self._label = 0

    def fresh_label(self) -> str:
        self._label += 1
        return f"L{self._label}"

    def _tagged(self, b: BStmt, origin: Optional[Stmt]) -> BStmt:
        b.origin_stmt = origin  # type: ignore[attr-defined]
        return b

    # -- emission --------------------------------------------------------------------

    def emit_block(self, block: Block, out: List[BStmt]) -> None:
        for s in block.stmts:
            self.emit_stmt(s, out)

    def emit_stmt(self, s: Stmt, out: List[BStmt]) -> None:
        outer = self.outer
        if isinstance(s, Block):
            self.emit_block(s, out)
            return
        if isinstance(s, Skip):
            out.append(self._tagged(BSkip(), s))
            return
        if isinstance(s, (Malloc,)):
            raise AbstractionError("malloc is outside the scalar fragment")
        if isinstance(s, Assign):
            self._emit_assign(s, out)
            return
        if isinstance(s, Assume):
            cond = self._as_bool(s.cond)
            neg_cover = outer.weakest_cover(Unary("!", cond), self.scope, self.bvars, self.types)
            out.append(self._tagged(BAssume(cond=BNot(neg_cover)), s))
            return
        if isinstance(s, Assert):
            cond = self._as_bool(s.cond)
            cover = outer.weakest_cover(cond, self.scope, self.bvars, self.types)
            out.append(self._tagged(BAssert(cond=cover), s))
            return
        if isinstance(s, Atomic):
            # sequential program: atomicity is transparent
            self.emit_block(s.body, out)
            return
        if isinstance(s, Call):
            out.append(self._tagged(BCall(proc=s.func.name, args=[], rets=[]), s))
            if s.lhs is not None:
                self._havoc_mentioning(s.lhs.name, s, out)
            return
        if isinstance(s, Return):
            out.append(self._tagged(BReturn([]), s))
            return
        if isinstance(s, Choice):
            end = self.fresh_label()
            labels = [self.fresh_label() for _ in s.branches]
            out.append(self._tagged(BGoto(labels=list(labels)), None))
            for lbl, branch in zip(labels, s.branches):
                anchor = BSkip(label=lbl)
                out.append(self._tagged(anchor, None))
                self.emit_block(branch, out)
                out.append(self._tagged(BGoto(labels=[end]), None))
            out.append(self._tagged(BSkip(label=end), None))
            return
        if isinstance(s, Iter):
            head = self.fresh_label()
            body_lbl = self.fresh_label()
            end = self.fresh_label()
            out.append(self._tagged(BGoto(label=head, labels=[body_lbl, end]), None))
            out.append(self._tagged(BSkip(label=body_lbl), None))
            self.emit_block(s.body, out)
            out.append(self._tagged(BGoto(labels=[head]), None))
            out.append(self._tagged(BSkip(label=end), None))
            return
        raise AbstractionError(f"cannot abstract {type(s).__name__}")

    def _as_bool(self, e: Expr) -> Expr:
        t = self.types.get(e.name) if isinstance(e, Var) else None
        if isinstance(e, Var) and not isinstance(t, BoolType):
            raise AbstractionError(f"non-bool condition {e}")
        return e

    def _emit_assign(self, s: Assign, out: List[BStmt]) -> None:
        if not isinstance(s.lhs, Var):
            raise AbstractionError("pointer/field stores are outside the scalar fragment")
        if isinstance(s.rhs, (Field, NullLit)) or (
            isinstance(s.rhs, Unary) and s.rhs.op in ("*", "&")
        ):
            raise AbstractionError("pointer operations are outside the scalar fragment")
        name = s.lhs.name
        targets: List[str] = []
        exprs: List[BExpr] = []
        for i, p in enumerate(self.scope):
            if name not in expr_vars(p):
                continue
            wp = subst(p, name, s.rhs)
            pos = self.outer.weakest_cover(wp, self.scope, self.bvars, self.types)
            neg = self.outer.weakest_cover(Unary("!", wp), self.scope, self.bvars, self.types)
            # F(wp) ? T : (F(!wp) ? F : *)
            update: BExpr = BOr(pos, BAnd(BNot(neg), BNondet()))
            targets.append(self.bvars[i])
            exprs.append(update)
        if targets:
            out.append(self._tagged(BAssign(targets=targets, exprs=exprs), s))
        else:
            out.append(self._tagged(BSkip(), s))

    def _havoc_mentioning(self, name: str, origin: Stmt, out: List[BStmt]) -> None:
        targets = [
            self.bvars[i] for i, p in enumerate(self.scope) if name in expr_vars(p)
        ]
        if targets:
            out.append(
                self._tagged(
                    BAssign(targets=targets, exprs=[BNondet() for _ in targets]), origin
                )
            )
