"""Error-trace data structures shared by the checkers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.cfg.graph import Origin


class CheckStatus(Enum):
    SAFE = "safe"
    ERROR = "error"
    EXHAUSTED = "resource-bound"  # the paper's "did not terminate within bound"

    def __str__(self) -> str:
        return self.value


@dataclass
class TraceStep:
    """One executed CFG node in an error trace.

    ``tid`` is the executing thread: always 0 for sequential programs;
    meaningful for concurrent traces and for sequential traces that have
    been mapped back to the concurrent program.
    """

    func: str
    node_id: int
    origin: Origin
    tid: int = 0

    def __str__(self) -> str:
        return f"[t{self.tid}] {self.origin}"


@dataclass
class CheckStats:
    states: int = 0
    transitions: int = 0
    max_depth: int = 0


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    status: CheckStatus
    violation_kind: Optional[str] = None
    message: str = ""
    trace: List[TraceStep] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)

    @property
    def is_error(self) -> bool:
        return self.status is CheckStatus.ERROR

    @property
    def is_safe(self) -> bool:
        return self.status is CheckStatus.SAFE

    @property
    def exhausted(self) -> bool:
        return self.status is CheckStatus.EXHAUSTED

    def format_trace(self) -> str:
        lines = [f"{self.status} ({self.violation_kind or 'no violation'}): {self.message}"]
        lines += [f"  {i:3d}. {step}" for i, step in enumerate(self.trace)]
        return "\n".join(lines)
