"""Deterministic fault plans (see docs/ROBUSTNESS.md).

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s: *when* a named
fault point is hit (per-process hit index, job id, attempt number, or a
seeded coin), inject *which* fault kind.  Plans are plain picklable
data: the scheduler installs one in its own process and ships the same
plan to every pool worker, so a campaign's fault schedule is fully
determined by the plan — re-running a pinned plan reproduces the same
injections at the same points.

Off by default and free when off: the instrumentation points call
:func:`fire` / :func:`corrupt`, which return immediately when no plan
is installed (one global load and one ``is None`` test — measured by
``benchmarks/bench_faults_overhead.py``).

Fault points (where the hooks live):

========================  =====================================================
``worker_start``          :func:`repro.campaign.worker.execute_job` entry
``mid_check``             after parse, before the pipeline runs
``cache_append``          :meth:`repro.campaign.cache.ResultCache.put`
``telemetry_emit``        :meth:`repro.campaign.telemetry.Telemetry.emit`
``pool_submit``           scheduler-side, before each pool submission
``journal_append``        :meth:`repro.campaign.journal.JobJournal._append`
``cancel_deliver``        :meth:`repro.cancel.CancelToken.cancel`
``engine_crash``          scheduler/serve engine loop, once per iteration
========================  =====================================================

Fault kinds (what the injection does):

==============  ==============================================================
``crash``       raise :class:`InjectedFault` (an ``OSError``)
``hang``        sleep past the job timeout (``seconds``, or 4x the timeout)
``oom``         allocate until ``MemoryError`` (rule ``mb`` ceiling, or the
                worker's ``RLIMIT_AS`` ceiling, whichever trips first)
``torn-write``  truncate a JSONL line mid-write (via :func:`corrupt`)
``pool-break``  ``SIGKILL`` the current pool worker so the parent sees
                ``BrokenProcessPool``; outside a pool it degrades to ``crash``
``kill``        ``SIGKILL`` the *current* process unconditionally — a hard
                crash (kill -9, OOM-killer, power loss) for durability tests;
                degrades to ``crash`` where ``SIGKILL`` does not exist
==============  ==============================================================
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs

FAULT_POINTS = (
    "worker_start",
    "mid_check",
    "cache_append",
    "telemetry_emit",
    "pool_submit",
    "journal_append",
    "cancel_deliver",
    "engine_crash",
)

FAULT_KINDS = ("crash", "hang", "oom", "torn-write", "pool-break", "kill")

#: oom allocation chunk; small enough to trip a ceiling promptly.
_OOM_CHUNK_MB = 8


class InjectedFault(OSError):
    """The exception raised by ``crash`` (and non-pool ``pool-break``)
    injections.  An ``OSError`` subclass on purpose: injected faults
    stand in for environmental failures (I/O errors, dead workers,
    exhausted memory), so hardened code paths that tolerate ``OSError``
    tolerate injections with no test-aware special cases."""


@dataclass(frozen=True)
class FaultRule:
    """One trigger: fire ``kind`` at fault point ``point``.

    The trigger narrows by any combination of per-process ``hits``
    indices (1-based, per point), a ``job`` id glob, an ``attempt``
    number, or a seeded probability ``p`` (deterministic per
    ``(plan seed, point, hit)``).  With no narrowing the rule fires on
    every hit.  ``seconds`` parameterizes ``hang`` (0 = 4x the job
    timeout); ``mb`` caps the ``oom`` allocation.
    """

    point: str
    kind: str
    hits: Tuple[int, ...] = ()
    p: float = 0.0
    job: Optional[str] = None
    attempt: Optional[int] = None
    seconds: float = 0.0
    mb: int = 256

    def __post_init__(self):
        if self.point not in FAULT_POINTS and self.point != "*":
            raise ValueError(f"unknown fault point {self.point!r} (know {FAULT_POINTS})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {FAULT_KINDS})")


@dataclass
class _Context:
    """What the current process is doing — consulted by rule matching."""

    job_id: Optional[str] = None
    attempt: Optional[int] = None
    timeout: Optional[float] = None
    pooled: bool = False


@dataclass
class FaultPlan:
    """A deterministic fault schedule (see module doc).

    Hit counters and the ``fired`` log are per-process state: each pool
    worker counts its own hits, so a plan's behavior inside one process
    is reproducible regardless of how jobs spread over workers.
    """

    rules: List[FaultRule] = field(default_factory=list)
    seed: int = 0
    #: per-point hit counts for raising kinds (:func:`fire`).
    hits: Dict[str, int] = field(default_factory=dict)
    #: per-point hit counts for ``torn-write`` (:func:`corrupt`).
    write_hits: Dict[str, int] = field(default_factory=dict)
    #: (point, kind, hit) log of every injection this process performed.
    fired: List[Tuple[str, str, int]] = field(default_factory=list)

    # -- construction ------------------------------------------------------------

    @classmethod
    def parse(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI specs: ``point:kind[:key=value,...]``.

        Keys: ``hits`` (``+``-separated 1-based indices), ``p`` (seeded
        probability), ``job`` (id glob), ``attempt``, ``seconds``,
        ``mb``.  Example: ``mid_check:crash:hits=1+3,job=imca/*``.
        """
        rules = []
        for spec in specs:
            parts = spec.split(":", 2)
            if len(parts) < 2:
                raise ValueError(f"fault spec {spec!r}: want point:kind[:key=value,...]")
            kwargs: Dict[str, object] = {}
            if len(parts) == 3 and parts[2]:
                for pair in parts[2].split(","):
                    if "=" not in pair:
                        raise ValueError(f"fault spec {spec!r}: bad option {pair!r}")
                    k, v = pair.split("=", 1)
                    if k == "hits":
                        kwargs[k] = tuple(int(x) for x in v.split("+"))
                    elif k in ("p", "seconds"):
                        kwargs[k] = float(v)
                    elif k in ("attempt", "mb"):
                        kwargs[k] = int(v)
                    elif k == "job":
                        kwargs[k] = v
                    else:
                        raise ValueError(f"fault spec {spec!r}: unknown option {k!r}")
            rules.append(FaultRule(parts[0], parts[1], **kwargs))
        return cls(rules=rules, seed=seed)

    def fresh(self) -> "FaultPlan":
        """A copy with pristine counters (for re-running a pinned plan
        in-process)."""
        return FaultPlan(rules=list(self.rules), seed=self.seed)

    # -- matching ----------------------------------------------------------------

    def _coin(self, point: str, kind: str, hit: int, p: float) -> bool:
        h = hashlib.sha256(f"{self.seed}:{point}:{kind}:{hit}".encode()).digest()
        return int.from_bytes(h[:8], "big") / 2.0**64 < p

    def _matches(self, rule: FaultRule, point: str, hit: int) -> bool:
        if rule.point != point and rule.point != "*":
            return False
        if rule.job is not None and not fnmatch(_ctx.job_id or "", rule.job):
            return False
        if rule.attempt is not None and _ctx.attempt != rule.attempt:
            return False
        if rule.hits:
            return hit in rule.hits
        if rule.p > 0.0:
            return self._coin(point, rule.kind, hit, rule.p)
        return True

    # -- actions -----------------------------------------------------------------

    def _record(self, point: str, kind: str, hit: int) -> None:
        self.fired.append((point, kind, hit))
        obs.inc("faults_injected")

    def _fire(self, point: str) -> None:
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        for rule in self.rules:
            if rule.kind == "torn-write":
                continue  # write-mutating kind: handled by corrupt()
            if self._matches(rule, point, hit):
                self._act(rule, point, hit)
                return

    def _act(self, rule: FaultRule, point: str, hit: int) -> None:
        self._record(point, rule.kind, hit)
        if rule.kind == "crash":
            raise InjectedFault(f"injected crash at {point} (hit {hit})")
        if rule.kind == "hang":
            timeout = _ctx.timeout
            seconds = rule.seconds or (timeout * 4 if timeout else 1.0)
            time.sleep(seconds)
            return
        if rule.kind == "oom":
            ballast = []
            for _ in range(max(1, rule.mb // _OOM_CHUNK_MB)):
                ballast.append(bytearray(_OOM_CHUNK_MB << 20))
            del ballast
            raise MemoryError(f"injected oom at {point} (hit {hit}, ceiling {rule.mb}MB)")
        if rule.kind == "pool-break":
            if _ctx.pooled and hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(f"injected pool-break at {point} (hit {hit}, not pooled)")
        if rule.kind == "kill":
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            raise InjectedFault(f"injected kill at {point} (hit {hit}, no SIGKILL)")

    def _corrupt(self, point: str, text: str) -> str:
        hit = self.write_hits.get(point, 0) + 1
        self.write_hits[point] = hit
        for rule in self.rules:
            if rule.kind != "torn-write":
                continue
            if self._matches(rule, point, hit):
                self._record(point, rule.kind, hit)
                # A mid-line crash: half the bytes, no trailing newline.
                return text[: max(1, len(text) // 2)]
        return text


# ---------------------------------------------------------------------------
# The installed plan (module-level, process-local)
# ---------------------------------------------------------------------------

_plan: Optional[FaultPlan] = None
_ctx = _Context()


def installed() -> Optional[FaultPlan]:
    """The plan the hooks are consulting right now (None = disabled)."""
    return _plan


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (None uninstalls)."""
    global _plan
    _plan = plan


class plan_context:
    """Install a plan for a ``with`` block, restoring the previous one
    (so nested campaigns compose).  ``plan_context(None)`` is a no-op
    pass-through, so callers need no conditionals."""

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan
        self._prev: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        global _plan
        self._prev = _plan
        if self.plan is not None:
            _plan = self.plan
        return _plan

    def __exit__(self, *exc) -> bool:
        global _plan
        _plan = self._prev
        return False


class job_context:
    """Declare what the process is working on (job id, attempt, timeout,
    whether it is a pool worker) for the duration of a ``with`` block —
    rule matching consults this."""

    def __init__(self, job_id: Optional[str] = None, attempt: Optional[int] = None,
                 timeout: Optional[float] = None, pooled: bool = False):
        self.fields = _Context(job_id=job_id, attempt=attempt, timeout=timeout,
                               pooled=pooled)
        self._prev: Optional[_Context] = None

    def __enter__(self) -> None:
        global _ctx
        self._prev = _ctx
        _ctx = self.fields
        return None

    def __exit__(self, *exc) -> bool:
        global _ctx
        _ctx = self._prev
        return False


def fire(point: str) -> None:
    """Hit a fault point.  No-op (and allocation-free) when no plan is
    installed; otherwise the first matching rule's fault happens here —
    raising, sleeping, allocating, or killing the process."""
    if _plan is None:
        return
    _plan._fire(point)


def corrupt(point: str, text: str) -> str:
    """Pass a line about to be written through the ``torn-write`` rules
    of the installed plan.  Identity when no plan is installed."""
    if _plan is None:
        return text
    return _plan._corrupt(point, text)
