"""Deterministic fault injection for chaos-hardening the campaign
runtime (docs/ROBUSTNESS.md).

The campaign layer's recovery paths — retry-and-degrade, pool rebuild,
cache-miss-on-corruption, graceful interrupt — carry the same kind of
guarantee as the KISS transformation itself: injected faults may cost
*coverage* (jobs degrade to ``resource-bound``), but never produce a
wrong verdict, a corrupt cache entry, or a malformed summary.  This
package provides the seeded :class:`FaultPlan` that exercises those
paths on demand; it is off by default and free when off.

Usage::

    from repro import faults

    plan = faults.FaultPlan([faults.FaultRule("mid_check", "crash", hits=(1,))])
    config = CampaignConfig(retries=1, fault_plan=plan)

CLI: ``python -m repro campaign --inject mid_check:crash:hits=1``.
"""

from .plan import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    corrupt,
    fire,
    install,
    installed,
    job_context,
    plan_context,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "corrupt",
    "fire",
    "install",
    "installed",
    "job_context",
    "plan_context",
]
