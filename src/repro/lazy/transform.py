"""The lazy pc-guarded round-robin sequentialization (Lazy-CSeq style).

Where :mod:`repro.rounds` is *eager* — each thread runs all of its K
rounds contiguously against nondeterministically guessed round-entry
snapshots, validated by a consistency epilogue — this transform is
*lazy*: the emitted sequential program executes the round-robin schedule
in its real order, so the shared globals always hold their true values
and no guessing (and no finite guess domain, the eager transform's
documented coverage hole) is needed.

The encoding is a CFG interpreter with one-hot boolean pc flags:

* the static *thread instances* are enumerated up front — the entry
  function is instance 0, and every ``async`` site adds one instance of
  its (direct) target, breadth-first, so a parent's index is always
  smaller than its children's;
* each instance's body is flattened into *nodes*: one per simple
  statement (``skip``/assign/``assert``/``assume``/``atomic``), one per
  ``choice``/``iter`` head (no payload, several successors), one per
  ``async`` site (the spawn arms the child's entry flag);
* instance ``t`` gets a step function ``__kiss_lz_step<t>()``: a single
  ``choice`` with one branch per node — ``assume`` the node's pc flag,
  clear it, run the payload, set a successor flag (``__kiss_lz_done<t>``
  past the last statement).  Locals and parameters are promoted to
  per-instance globals (``__kiss_lz<t>_x``) so they survive across
  segment boundaries;
* the driver ``__kiss_check`` unrolls ``K`` rounds; in each round every
  instance in spawn order runs ``iter { __kiss_lz_step<t>(); }`` — zero
  or more consecutive nodes.  An instance that is unspawned, finished,
  or blocked at an unsatisfied ``assume`` simply takes the
  zero-iteration path and retries next round.

Every execution of the emitted program *is* a K-round round-robin
execution of the input, so asserts fail on the spot, there is no
deferred error flag, and the trace mapper (:mod:`repro.lazy.tracemap`)
is a transliteration: payload nodes in sequential execution order are
the concurrent interleaving.

Two optional restrictions narrow where a segment may *end* (both only
restrict coverage, never soundness — every surviving execution is still
a real round-robin prefix):

* ``por=True`` runs :func:`repro.analysis.sharedaccess.analyze_shared_access`
  and, after each non-final segment, constrains the instance to have
  stopped at a node whose payload touches a shared global, can block
  (any ``assume``), or spawns — purely thread-local suffixes commute
  forward into the next segment, so nothing is lost;
* ``cs_tile`` (a list of ``"<instance>:<pc>"`` strings, see
  :mod:`repro.campaign.swarm`) keeps only the listed context-switch
  points enabled; tiles jointly covering all candidate points recover
  the full schedule set by a pigeonhole argument (an execution stops at
  most ``(K-1) * instances`` times, so some tile of any covering family
  with more tiles than that contains all of its stop points).

Stopping "at entry" (spawned but no step taken), ``off`` (never
spawned) and ``done`` are always allowed — they encode "this instance
was not scheduled (further)", which every schedule may do.

The transform supports the scalar call-free fragment: no ``call``
statements (synchronous calls would need a promoted stack; inline
first — though note the inliner's argument binds would break trace
mapping, so lazy drivers are written call-free), no heap
(``malloc``/pointers/fields), ``int``/``bool`` variables only, direct
``async`` targets only, no ``async`` under ``iter`` or inside
``atomic`` (instances are static), and no spawn cycles.  Division *is*
allowed — there are no unvalidated guesses to make it spurious.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set

from repro import obs
from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    BOOL,
    Binary,
    Block,
    BoolLit,
    BoolType,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    GlobalDecl,
    IntLit,
    IntType,
    Iter,
    Malloc,
    Program,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.analysis.sharedaccess import analyze_shared_access
from repro.core import names
from repro.core.transform import KissTransformer, TransformError, _tag
from repro.lang.lower import clone_program, is_core_program

TAG_LZ_SPAWN = "lz-spawn"  # skip marker at a spawn node (carries the async sid)

#: Sentinel pc: the instance ran past its last statement.
DONE = -1


def _default_init(typ: Type) -> Expr:
    if isinstance(typ, IntType):
        return IntLit(0)
    if isinstance(typ, BoolType):
        return BoolLit(False)
    raise TransformError(f"lazy: cannot default-initialize type {typ}")


@dataclass
class _Node:
    """One flattened CFG node of an instance."""

    pc: int
    payload: Optional[Stmt] = None  # a simple core statement, or None
    spawn: Optional[AsyncCall] = None  # set instead of payload at async sites
    succs: List[int] = dc_field(default_factory=list)  # pcs (DONE allowed)


@dataclass
class _Instance:
    """One static thread instance (the entry, or one async site's target)."""

    index: int
    func: str  # original function name (for diagnostics)
    decl: FuncDecl  # per-instance deep copy; locals renamed in place
    chain: tuple  # ancestor function names, for spawn-cycle detection
    entry: int = DONE
    nodes: List[_Node] = dc_field(default_factory=list)


class LazyTransformer(KissTransformer):
    """``transform(P)`` emits an ordinary sequential core program whose
    executions are exactly the K-round round-robin executions of ``P``.

    Parameters
    ----------
    rounds:
        The round budget ``K >= 1``: every instance is preempted at most
        ``K - 1`` times.
    max_ts:
        Accepted for constructor uniformity with the other strategies
        and ignored — the instance tree is static, so no parked-thread
        multiset exists.
    por:
        Restrict segment ends to shared-access/blocking/spawn nodes
        (see the module docstring).
    cs_tile:
        Optional list of enabled context-switch points as
        ``"<instance>:<pc>"`` strings; ``None`` enables all of them.
    """

    def __init__(
        self,
        rounds: int = 2,
        max_ts: int = 0,
        por: bool = False,
        cs_tile: Optional[Sequence[str]] = None,
    ):
        super().__init__(max_ts=max_ts)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.por = por
        self.cs_tile = list(cs_tile) if cs_tile is not None else None
        # Populated by transform():
        self.instances: List[_Instance] = []
        #: every context-switch candidate as ``"<instance>:<pc>"`` — the
        #: universe :mod:`repro.campaign.swarm` partitions into tiles.
        self.cs_points: List[str] = []

    # -- public API -------------------------------------------------------------------

    def transform(self, prog: Program) -> Program:
        with obs.span(
            "transform",
            transformer=type(self).__name__,
            rounds=self.rounds,
            por=self.por,
        ):
            return self._transform(prog)

    # -- orchestration ----------------------------------------------------------------

    def _transform(self, prog: Program) -> Program:
        if not is_core_program(prog):
            raise TransformError("input must be a core program (run repro.lang.lower first)")
        self._check_no_reserved(prog)
        self._check_globals(prog)
        out = clone_program(prog)
        self.prog = out

        self._spawn_child: Dict[int, int] = {}  # id(AsyncCall) -> child instance
        self.instances = self._build_instances(prog)
        for inst in self.instances:
            self._check_instance(inst)
            self._rename_locals(inst)
            self._flatten(inst)

        shared: Optional[Set[str]] = None
        if self.por:
            shared = analyze_shared_access(prog).shared
        allowed = self._allowed_stops(shared)

        out.functions = {}
        for inst in self.instances:
            out.functions[names.lz_step(inst.index)] = self._make_step(inst)
        # The driver takes over the original entry's name: the source
        # functions are gone from the output, and reusing the name keeps
        # the pretty-print/reparse round trip canonical (witness emission
        # re-parses the text, and parsing fixes the entry to ``main``).
        out.functions[prog.entry] = self._make_driver(allowed, name=prog.entry)
        out.entry = prog.entry
        self._add_lazy_globals(out)

        self.cs_points = [
            f"{inst.index}:{n.pc}"
            for inst in self.instances
            for n in inst.nodes
            if n.pc != inst.entry
        ]
        obs.inc("lazy_instances", len(self.instances))
        obs.inc("lazy_nodes", sum(len(i.nodes) for i in self.instances))
        obs.inc("lazy_cs_candidates", len(self.cs_points))
        return out

    # -- instance tree ----------------------------------------------------------------

    def _build_instances(self, prog: Program) -> List[_Instance]:
        try:
            entry_decl = prog.functions[prog.entry]
        except KeyError:
            raise TransformError(f"unknown entry function '{prog.entry}'") from None
        if entry_decl.params:
            raise TransformError("lazy: entry function with parameters is unsupported")
        instances = [
            _Instance(0, prog.entry, copy.deepcopy(entry_decl), chain=(prog.entry,))
        ]
        i = 0
        while i < len(instances):
            inst = instances[i]
            for s in walk_stmts(inst.decl.body):
                if not isinstance(s, AsyncCall):
                    continue
                target = s.func.name
                local_names = set(inst.decl.locals) | {p.name for p in inst.decl.params}
                if target not in prog.functions or target in local_names or target in prog.globals:
                    raise TransformError(
                        f"lazy: async target '{target}' is not a direct function name"
                    )
                if target in inst.chain:
                    raise TransformError(
                        f"lazy: spawn cycle through '{target}' "
                        f"(instance tree must be finite): {' -> '.join(inst.chain)}"
                    )
                child = _Instance(
                    len(instances),
                    target,
                    copy.deepcopy(prog.functions[target]),
                    chain=inst.chain + (target,),
                )
                self._spawn_child[id(s)] = child.index
                instances.append(child)
            i += 1
        return instances

    # -- restrictions -----------------------------------------------------------------

    @staticmethod
    def _check_globals(prog: Program) -> None:
        for g in prog.globals.values():
            if not isinstance(g.type, (IntType, BoolType)):
                raise TransformError(
                    f"lazy: global '{g.name}' has unsupported type {g.type} "
                    "(int/bool scalar fragment only)"
                )

    def _check_instance(self, inst: _Instance) -> None:
        decl = inst.decl
        for p in decl.params:
            if not isinstance(p.type, (IntType, BoolType)):
                raise TransformError(
                    f"lazy: parameter '{p.name}' of '{inst.func}' has unsupported type {p.type}"
                )
        for name, typ in decl.locals.items():
            if not isinstance(typ, (IntType, BoolType)):
                raise TransformError(
                    f"lazy: local '{name}' of '{inst.func}' has unsupported type {typ}"
                )
        for s in walk_stmts(decl.body):
            if isinstance(s, Call):
                raise TransformError(
                    f"lazy: call statement in '{inst.func}' is unsupported "
                    "(the lazy fragment is call-free; inline by hand)"
                )
            if isinstance(s, Malloc):
                raise TransformError(f"lazy: malloc in '{inst.func}' is unsupported (no heap)")
            if isinstance(s, (Iter, Atomic)):
                for inner in walk_stmts(s.body):
                    if isinstance(inner, AsyncCall):
                        where = "iter" if isinstance(s, Iter) else "atomic"
                        raise TransformError(
                            f"lazy: async under {where} in '{inst.func}' is unsupported "
                            "(thread instances must be static)"
                        )
            for e in stmt_exprs(s):
                for sub in walk_exprs(e):
                    if isinstance(sub, Field):
                        raise TransformError(
                            f"lazy: field access in '{inst.func}' is unsupported (no heap)"
                        )
                    if isinstance(sub, Unary) and sub.op in ("*", "&"):
                        raise TransformError(
                            f"lazy: pointer operation in '{inst.func}' is unsupported (no heap)"
                        )

    # -- local promotion --------------------------------------------------------------

    def _rename_locals(self, inst: _Instance) -> None:
        mapping = {n: names.lz_local(inst.index, n) for n in inst.decl.locals}
        mapping.update({p.name: names.lz_local(inst.index, p.name) for p in inst.decl.params})
        if not mapping:
            return

        def ren(e: Expr) -> Expr:
            if isinstance(e, Var):
                return Var(mapping[e.name]) if e.name in mapping else e
            if isinstance(e, Unary):
                return Unary(e.op, ren(e.operand))
            if isinstance(e, Binary):
                return Binary(e.op, ren(e.left), ren(e.right))
            return e

        for s in walk_stmts(inst.decl.body):
            if isinstance(s, Assign):
                s.lhs = ren(s.lhs)
                s.rhs = ren(s.rhs)
            elif isinstance(s, (Assert, Assume)):
                s.cond = ren(s.cond)
            elif isinstance(s, AsyncCall):
                s.args = [ren(a) for a in s.args]
            elif isinstance(s, Return):
                if s.value is not None:
                    s.value = ren(s.value)

    # -- flattening -------------------------------------------------------------------

    def _flatten(self, inst: _Instance) -> None:
        self._cur = inst
        inst.entry = self._flat_seq(inst.decl.body.stmts, DONE)
        del self._cur

    def _new_node(self) -> _Node:
        node = _Node(pc=len(self._cur.nodes))
        self._cur.nodes.append(node)
        return node

    def _flat_seq(self, stmts: Sequence[Stmt], follow: int) -> int:
        entry = follow
        for s in reversed(stmts):
            entry = self._flat_stmt(s, entry)
        return entry

    def _flat_stmt(self, s: Stmt, follow: int) -> int:
        if isinstance(s, Block):
            return self._flat_seq(s.stmts, follow)
        if isinstance(s, Choice):
            node = self._new_node()
            node.succs = [self._flat_seq(b.stmts, follow) for b in s.branches]
            return node.pc
        if isinstance(s, Iter):
            # Head first, so the body's fall-through can loop back to it.
            head = self._new_node()
            body_entry = self._flat_seq(s.body.stmts, head.pc)
            head.succs = [body_entry, follow]
            return head.pc
        if isinstance(s, Return):
            return DONE  # no node: returning is not an observable step
        if isinstance(s, AsyncCall):
            node = self._new_node()
            node.spawn = s
            node.succs = [follow]
            return node.pc
        if isinstance(s, (Skip, Assign, Assert, Assume, Atomic)):
            node = self._new_node()
            node.payload = s
            node.succs = [follow]
            return node.pc
        raise TransformError(f"lazy: cannot flatten statement {type(s).__name__}")

    # -- step functions ---------------------------------------------------------------

    def _goto(self, t: int, pc: int) -> Stmt:
        flag = names.lz_done(t) if pc == DONE else names.lz_at(t, pc)
        return _tag(Assign(Var(flag), BoolLit(True)))

    def _spawn_stmts(self, inst: _Instance, node: _Node) -> List[Stmt]:
        s = node.spawn
        child = self.instances[self._spawn_child[id(s)]]
        out: List[Stmt] = []
        for p, arg in zip(child.decl.params, s.args):
            out.append(_tag(Assign(Var(names.lz_local(child.index, p.name)), arg)))
        out.append(_tag(Assign(Var(names.lz_off(child.index)), BoolLit(False))))
        out.append(self._goto(child.index, child.entry))
        out.append(_tag(Skip(), TAG_LZ_SPAWN, spawn=str(child.index), sid=s.sid))
        return out

    def _make_step(self, inst: _Instance) -> FuncDecl:
        t = inst.index
        branches: List[Block] = []
        for node in inst.nodes:
            stmts: List[Stmt] = [
                _tag(Assume(Var(names.lz_at(t, node.pc)))),
                _tag(Assign(Var(names.lz_at(t, node.pc)), BoolLit(False))),
            ]
            if node.spawn is not None:
                stmts.extend(self._spawn_stmts(inst, node))
            elif node.payload is not None:
                stmts.append(node.payload)  # keeps its sid, untagged: the user step
            if len(node.succs) == 1:
                stmts.append(self._goto(t, node.succs[0]))
            else:
                stmts.append(
                    _tag(Choice([Block([self._goto(t, pc)]) for pc in node.succs]))
                )
            branches.append(Block(stmts))
        body = Block([_tag(Choice(branches))]) if branches else Block([])
        return FuncDecl(names.lz_step(t), [], None, body)

    # -- segment-end constraints ------------------------------------------------------

    def _node_is_stop_relevant(self, node: _Node, shared: Set[str]) -> bool:
        """POR: may a schedule need to *stop* here?  Yes when the node's
        payload touches a shared global (the preemption is observable),
        can block (``assume`` — a blocked run legitimately halts at it),
        or spawns (conservatively kept).  Purely-local nodes commute
        forward into the next segment."""
        if node.spawn is not None:
            return True
        s = node.payload
        if s is None:
            return False  # choice/iter heads: no effect, always commute
        for inner in walk_stmts(s):
            if isinstance(inner, Assume):
                return True
            for e in stmt_exprs(inner):
                for sub in walk_exprs(e):
                    if isinstance(sub, Var) and sub.name in shared:
                        return True
        return False

    def _allowed_stops(self, shared: Optional[Set[str]]) -> Dict[int, Optional[Set[int]]]:
        """Per instance: the set of candidate pcs a non-final segment may
        stop at, or ``None`` when unconstrained (no check emitted)."""
        tile: Optional[Dict[int, Set[int]]] = None
        if self.cs_tile is not None:
            tile = {}
            for point in self.cs_tile:
                try:
                    t_str, pc_str = point.split(":")
                    tile.setdefault(int(t_str), set()).add(int(pc_str))
                except ValueError:
                    raise TransformError(f"lazy: malformed cs_tile point {point!r}") from None

        out: Dict[int, Optional[Set[int]]] = {}
        pruned = 0
        for inst in self.instances:
            candidates = {n.pc for n in inst.nodes if n.pc != inst.entry}
            allowed = set(candidates)
            if shared is not None:
                by_pc = {n.pc: n for n in inst.nodes}
                allowed &= {pc for pc in allowed if self._node_is_stop_relevant(by_pc[pc], shared)}
            if tile is not None:
                allowed &= tile.get(inst.index, set())
            pruned += len(candidates) - len(allowed)
            out[inst.index] = None if allowed == candidates else allowed
        if self.por:
            obs.inc("por_schedule_points_pruned", pruned)
        return out

    # -- the driver -------------------------------------------------------------------

    def _make_driver(
        self, allowed: Dict[int, Optional[Set[int]]], name: str = "main"
    ) -> FuncDecl:
        stmts: List[Stmt] = []
        for k in range(self.rounds):
            last_round = k == self.rounds - 1
            for inst in self.instances:
                if not inst.nodes:
                    continue  # the instance can take no step; nothing to run
                seg = _tag(Iter(Block([_tag(Call(None, Var(names.lz_step(inst.index)), []))])))
                stmts.append(seg)
                stops = allowed[inst.index]
                if last_round or stops is None:
                    continue
                branches = [
                    Block([_tag(Assume(Var(names.lz_off(inst.index))))]),
                    Block([_tag(Assume(Var(names.lz_done(inst.index))))]),
                ]
                if inst.entry != DONE:
                    branches.append(
                        Block([_tag(Assume(Var(names.lz_at(inst.index, inst.entry))))])
                    )
                for pc in sorted(stops):
                    branches.append(Block([_tag(Assume(Var(names.lz_at(inst.index, pc))))]))
                stmts.append(_tag(Choice(branches)))
        return FuncDecl(name, [], None, Block(stmts))

    # -- globals ----------------------------------------------------------------------

    def _add_lazy_globals(self, out: Program) -> None:
        for inst in self.instances:
            t = inst.index
            is_main = t == 0
            out.globals[names.lz_off(t)] = GlobalDecl(names.lz_off(t), BOOL, BoolLit(not is_main))
            out.globals[names.lz_done(t)] = GlobalDecl(
                names.lz_done(t), BOOL, BoolLit(is_main and inst.entry == DONE)
            )
            for node in inst.nodes:
                flag = names.lz_at(t, node.pc)
                out.globals[flag] = GlobalDecl(
                    flag, BOOL, BoolLit(is_main and node.pc == inst.entry)
                )
            for p in inst.decl.params:
                pname = names.lz_local(t, p.name)
                out.globals[pname] = GlobalDecl(pname, p.type, _default_init(p.type))
            for lname, typ in inst.decl.locals.items():
                gname = names.lz_local(t, lname)
                out.globals[gname] = GlobalDecl(gname, typ, _default_init(typ))


def lazy_transform(
    prog: Program,
    rounds: int = 2,
    por: bool = False,
    cs_tile: Optional[Sequence[str]] = None,
) -> Program:
    """Sequentialize a concurrent core program with the lazy K-round schema."""
    return LazyTransformer(rounds=rounds, por=por, cs_tile=cs_tile).transform(prog)
