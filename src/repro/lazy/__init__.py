"""Lazy pc-guarded K-round sequentialization (Lazy-CSeq style).

Where :mod:`repro.rounds` eagerly guesses round-entry snapshots and
validates them after the fact, this package interprets the round-robin
schedule in its real order: per-instance one-hot pc flags, step
functions that resume each thread at its saved pc, and an unrolled
K-segment driver.  Shared globals always hold true values, so asserts
fail on the spot and coverage is not limited by any guess domain.  See
``docs/SEQUENTIALIZATION.md`` and ``docs/SWARM.md``.
"""

from .transform import (
    DONE,
    TAG_LZ_SPAWN,
    LazyTransformer,
    lazy_transform,
)
from .tracemap import map_result, map_trace

__all__ = [
    "DONE",
    "TAG_LZ_SPAWN",
    "LazyTransformer",
    "lazy_transform",
    "map_result",
    "map_trace",
]
