"""Mapping lazy sequential error traces back to concurrent interleavings.

The lazy transform executes the round-robin schedule in its real order,
so — unlike the eager K-round mapper, which must sort thread-major
segments into round-major order — this mapper is a transliteration: walk
the sequential trace once, and every payload node (an original statement
executing inside some ``__kiss_lz_step<t>``) is the next step of
instance ``t``'s thread, in exactly the interleaved order the schedule
ran it.

Thread ids are assigned the way :mod:`repro.concheck.replay` assigns
them: the entry instance is tid 0, and each ``TAG_LZ_SPAWN`` marker (the
``skip`` emitted at a spawn node, carrying the ``async`` statement's sid
and the child's static instance index) allocates the next tid in
dynamic spawn order.  An error trace already ends at the failing
``assert`` — lazy has no deferred error flag — so no truncation pass is
needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import ProgramCfg
from repro.core import names
from repro.core.tracemap import ConcurrentTrace, PlanStep, TraceMapError
from repro.seqcheck.trace import CheckResult, TraceStep

from .transform import TAG_LZ_SPAWN

_STEP_PREFIX = names.PREFIX + "lz_step"


def _instance_of(func: str) -> Optional[int]:
    """The instance index of a step function, or None for other functions."""
    if not func.startswith(_STEP_PREFIX):
        return None
    try:
        return int(func[len(_STEP_PREFIX):])
    except ValueError:
        return None


def map_trace(pcfg: ProgramCfg, trace: List[TraceStep]) -> ConcurrentTrace:
    """Reconstruct the concurrent interleaving from a sequential trace of
    a :class:`~repro.lazy.transform.LazyTransformer` program."""
    tids: Dict[int, int] = {0: 0}
    next_tid = 1
    out = ConcurrentTrace()
    for step in trace:
        inst = _instance_of(step.func)
        if inst is None:
            continue  # driver nodes: segment iters, stop constraints
        node = pcfg.cfg(step.func).node(step.node_id)
        if node.kind in ("call", "return"):
            continue
        origin = node.origin
        cur = tids.get(inst)
        if cur is None:
            raise TraceMapError(f"lazy: instance {inst} steps before being spawned")
        if origin.tag == TAG_LZ_SPAWN:
            spawn = getattr(node.stmt, "kiss_spawn", None)
            if spawn is None:
                raise TraceMapError("lazy: spawn marker without an instance index")
            child = int(spawn)
            if child in tids:
                raise TraceMapError(f"lazy: instance {child} spawned twice")
            tids[child] = next_tid
            next_tid += 1
            out.steps.append(PlanStep(cur, origin.sid, "spawn", origin.text))
        elif origin.tag == "user" and origin.sid:
            out.steps.append(PlanStep(cur, origin.sid, "step", origin.text))
    return out


def map_result(pcfg: ProgramCfg, result: CheckResult) -> Optional[ConcurrentTrace]:
    """Map a checker result's trace; None when there is no error trace."""
    if not result.is_error:
        return None
    return map_trace(pcfg, result.trace)
