"""Campaigns over the bundled driver corpus (the Table 1 job matrix).

``corpus_jobs`` expands driver specs into one race job per
device-extension field, with the same budgets as the serial runner
(:func:`repro.drivers.corpus.check_driver`): fields the spec marks
UNRESOLVED get the small ``unresolved_budget``, everything else the full
``max_states``.  ``run_corpus_campaign`` executes them and folds the
results back into :class:`~repro.drivers.corpus.DriverRunResult` rows so
Table 1/Table 2 tooling is agnostic about which engine ran the checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.drivers.corpus import DRIVER_SPECS, DriverRunResult, FieldOutcome
from repro.drivers.generator import EXTENSION, generate_source
from repro.drivers.spec import DriverSpec, FieldKind

from .jobs import CheckJob, JobResult
from .scheduler import CampaignConfig, CampaignScheduler
from .telemetry import Telemetry


def corpus_jobs(
    specs: Optional[Sequence[DriverSpec]] = None,
    refined: bool = False,
    fields_by_driver: Optional[Dict[str, Sequence[str]]] = None,
    max_states: int = 300_000,
    unresolved_budget: int = 200,
    loc_scale: int = 0,
    witness: bool = False,
) -> List[CheckJob]:
    """One race job per (driver, device-extension field).

    ``fields_by_driver`` restricts a driver to a field subset (Table 2
    re-checks only the fields that raced in Table 1).  ``witness``
    turns on certificate emission for safe verdicts (an execution
    option: it never changes cache keys).
    """
    jobs: List[CheckJob] = []
    for spec in specs if specs is not None else DRIVER_SPECS:
        source = generate_source(spec, refined_harness=refined, loc_scale=loc_scale)
        kinds = {f.name: f.kind for f in spec.fields}
        wanted = fields_by_driver.get(spec.name) if fields_by_driver else None
        for fname in wanted if wanted is not None else [f.name for f in spec.fields]:
            budget = unresolved_budget if kinds[fname] is FieldKind.UNRESOLVED else max_states
            config = {"max_ts": 0, "max_states": budget, "map_traces": False}
            if witness:
                config["witness"] = True
            jobs.append(
                CheckJob(
                    job_id=f"{spec.name}/{EXTENSION}.{fname}",
                    driver=spec.name,
                    source=source,
                    prop="race",
                    target=f"{EXTENSION}.{fname}",
                    config=config,
                )
            )
    return jobs


def results_to_driver_runs(results: Sequence[JobResult]) -> List[DriverRunResult]:
    """Fold job results into per-driver Table 1 rows (input order)."""
    runs: Dict[str, DriverRunResult] = {}
    for r in results:
        run = runs.setdefault(r.driver, DriverRunResult(r.driver))
        fname = r.target.split(".", 1)[1] if r.target and "." in r.target else r.target
        run.outcomes.append(FieldOutcome(fname, r.table_verdict, r.states))
    return list(runs.values())


def run_corpus_campaign(
    specs: Optional[Sequence[DriverSpec]] = None,
    config: Optional[CampaignConfig] = None,
    telemetry: Optional[Telemetry] = None,
    **job_kwargs,
) -> Tuple[List[DriverRunResult], List[JobResult], CampaignScheduler]:
    """Run the per-field loop over the corpus through the campaign
    engine.  Returns ``(driver rows, raw job results, scheduler)`` — the
    scheduler exposes the cache counters and summary renderer."""
    scheduler = CampaignScheduler(config)
    results = scheduler.run(corpus_jobs(specs, **job_kwargs), telemetry=telemetry)
    return results_to_driver_runs(results), results, scheduler
