"""Campaign engine: parallel, cached, fault-tolerant checking runs.

KISS turns one concurrent-program property into one *sequential*
checking run, so the paper's evaluation is an embarrassingly parallel
job matrix (drivers × device-extension fields).  This package is the
orchestration layer over that matrix:

* :mod:`jobs` — the ``CheckJob``/``JobResult`` model;
* :mod:`runtime` — the shared ``CampaignRuntime`` engine: pool
  lifecycle, windowed submission, per-job wall-clock timeouts, bounded
  retry with graceful degradation to ``"resource-bound"``;
* :mod:`scheduler` — the batch frontend over the runtime (deadline,
  signal draining, input-order results, Table 1 summary); the checking
  service (:mod:`repro.serve`) is a second frontend over the same
  engine;
* :mod:`cache` — content-addressed (SHA-256) result cache persisted as
  JSONL under ``.kiss-cache/``;
* :mod:`telemetry` — structured JSONL event stream and the Table 1
  shaped end-of-run summary;
* :mod:`corpus` — campaigns over the bundled 18-driver corpus;
* :mod:`swarm` — one program fanned out into N schedule tiles of the
  lazy sequentialization, aggregated back to a single verdict;
* :mod:`journal` — the ``kiss-journal/1`` write-ahead job journal:
  crash-recoverable admission/terminal lifecycle records and the
  :func:`~repro.campaign.journal.replay` recovery plan.

The runtime is chaos-hardened (docs/ROBUSTNESS.md): per-worker memory
ceilings, a campaign deadline, graceful SIGINT/SIGTERM draining with a
schema-valid partial summary, flock-guarded cache appends, and the
deterministic fault-injection hooks of :mod:`repro.faults`.

CLI: ``python -m repro campaign --jobs 8``.
"""

from .cache import ResultCache, cache_key, canonical_program_text
from .corpus import corpus_jobs, results_to_driver_runs, run_corpus_campaign
from .jobs import CheckJob, JobResult, parse_target
from .journal import JobJournal, RecoveryPlan, replay as replay_journal
from .runtime import DEFAULT_CACHE_DIR, CampaignConfig, CampaignRuntime, default_jobs
from .scheduler import CampaignScheduler, run_jobs
from .swarm import (
    SwarmReport,
    TilePlan,
    aggregate,
    plan_tiles,
    run_swarm_campaign,
    swarm_jobs,
)
from .telemetry import (
    SUMMARY_SCHEMA,
    Telemetry,
    summarize,
    summary_document,
    validate_summary,
)
from .worker import execute_job

__all__ = [
    "CheckJob",
    "JobResult",
    "parse_target",
    "CampaignConfig",
    "CampaignRuntime",
    "CampaignScheduler",
    "DEFAULT_CACHE_DIR",
    "default_jobs",
    "run_jobs",
    "ResultCache",
    "JobJournal",
    "RecoveryPlan",
    "replay_journal",
    "cache_key",
    "canonical_program_text",
    "SUMMARY_SCHEMA",
    "Telemetry",
    "summarize",
    "summary_document",
    "validate_summary",
    "corpus_jobs",
    "results_to_driver_runs",
    "run_corpus_campaign",
    "execute_job",
    "TilePlan",
    "SwarmReport",
    "aggregate",
    "plan_tiles",
    "swarm_jobs",
    "run_swarm_campaign",
]
