"""Write-ahead job journal: crash-recoverable campaign/serve state.

The journal is a ``kiss-journal/1`` JSONL log recording every admitted
job's lifecycle::

    admitted  -> started -> done | cancelled | abandoned
    (spec, key,   (attempt)   (terminal records; precedence
     tenant,                   done > cancelled > abandoned)
     origin)

``admitted`` carries the *full* job spec (driver, source, property,
config) plus the content-addressed cache key, tenant, and origin, so a
replay is self-contained: a journal file alone reconstructs every job a
crashed run still owed.  Appends go through the same exclusive-flock
:func:`repro.ioutil.locked_append` as the result cache, and the loader
is torn-line tolerant in the same way — a SIGKILL mid-append degrades
that one record to noise, never to a parse error.  A *failed* append
(disk full, injected ``journal_append`` fault) is counted and degraded
to in-memory tracking; durability may be lost for that record, safety
never is (the journal is advisory for *recovery*, the result cache
remains the source of verdict truth).

Recovery (:func:`replay`) folds the log into a :class:`RecoveryPlan`:
jobs whose latest state is non-terminal (``admitted``/``started``) or
``abandoned`` are re-enqueued; ``done`` and ``cancelled`` are settled.
Terminal precedence is ``done > cancelled > abandoned`` so a hedged or
raced duplicate can never demote a completed job.  Replay is idempotent:
a resumed run answers settled work from the result cache and writes
fresh terminal records for the re-enqueued jobs, so a second resume
finds nothing left to do.

``JobJournal(None)`` is disabled (never writes), mirroring
:class:`~repro.campaign.cache.ResultCache`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import faults, obs
from repro.ioutil import locked_append
from repro.schemas import JOURNAL_SCHEMA, validate_journal_record

from .jobs import CheckJob

#: terminal events, strongest first: a later weaker record never
#: overrides an earlier stronger one (hedge losers, double shutdowns).
_TERMINAL_RANK = {"done": 3, "cancelled": 2, "abandoned": 1}


class JobJournal:
    """Append-only lifecycle log keyed by ``job_id``.

    Tracks the set of *open* (admitted, no terminal record) jobs — from
    any prior runs sharing the file plus this one — so shutdown can
    stamp ``abandoned`` on exactly the jobs still owed, and duplicate
    terminal records are suppressed at the source.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self.enabled = path is not None
        #: appends that failed at the OS level (record lost on disk,
        #: lifecycle still tracked in memory for this run).
        self.write_errors = 0
        #: job_id -> True for admitted-but-unterminated jobs.
        self._open: Dict[str, bool] = {}
        if self.enabled:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            if os.path.exists(path):
                plan = replay(path)
                for job in plan.jobs:
                    self._open[job.job_id] = True

    def is_open(self, job_id: str) -> bool:
        return job_id in self._open

    # -- lifecycle records -------------------------------------------------------

    def admit(
        self,
        job: CheckJob,
        key: str,
        tenant: Optional[str] = None,
        origin: str = "campaign",
    ) -> None:
        if not self.enabled:
            return
        self._append(
            {
                "event": "admitted",
                "job": job.job_id,
                "key": key,
                "tenant": tenant,
                "origin": origin,
                "spec": job.to_dict(),
            }
        )
        self._open[job.job_id] = True

    def started(self, job_id: str, attempt: int) -> None:
        if not self.enabled or job_id not in self._open:
            return
        self._append({"event": "started", "job": job_id, "attempt": attempt})

    def done(self, job_id: str, verdict: str) -> None:
        self._terminal({"event": "done", "job": job_id, "verdict": verdict})

    def cancelled(self, job_id: str, reason: str = "") -> None:
        self._terminal({"event": "cancelled", "job": job_id, "reason": reason})

    def abandoned(self, job_id: str, reason: str = "") -> None:
        self._terminal({"event": "abandoned", "job": job_id, "reason": reason})

    def _terminal(self, doc: dict) -> None:
        # only jobs this journal knows as open get terminal records:
        # suppresses duplicates (hedge losers settle once) and keeps
        # unjournaled flows (cache hits never admitted) out of the log.
        if not self.enabled or doc["job"] not in self._open:
            return
        self._append(doc)
        self._open.pop(doc["job"], None)

    def _append(self, doc: dict) -> None:
        doc = dict(doc, schema=JOURNAL_SCHEMA, t=round(time.time(), 3))
        validate_journal_record(doc)
        line = json.dumps(doc, sort_keys=True) + "\n"
        try:
            faults.fire("journal_append")
            locked_append(self.path, faults.corrupt("journal_append", line))
        except OSError:
            self.write_errors += 1
            obs.inc("journal_write_errors")

    # -- maintenance -------------------------------------------------------------

    def stats(self) -> dict:
        """Shape of the log for ``journal stats`` (delegates to
        :func:`replay` so the CLI and the loader agree byte-for-byte)."""
        if not self.enabled:
            return {"enabled": False, "path": None}
        plan = replay(self.path)
        doc = plan.summary_doc()
        doc["enabled"] = True
        doc["path"] = self.path
        doc["file_bytes"] = (
            os.path.getsize(self.path) if os.path.exists(self.path) else 0
        )
        return doc


@dataclass
class RecoveryPlan:
    """What a journal replay owes: the incomplete jobs, plus tallies."""

    path: Optional[str] = None
    #: jobs to re-enqueue, in first-admission order.
    jobs: List[CheckJob] = field(default_factory=list)
    #: job_id -> cache key for the re-enqueued jobs.
    keys: Dict[str, str] = field(default_factory=dict)
    #: job_id -> tenant (None for batch-origin jobs).
    tenants: Dict[str, Optional[str]] = field(default_factory=dict)
    admitted: int = 0
    done: int = 0
    cancelled: int = 0
    abandoned: int = 0
    #: admitted + started but no terminal record (crash mid-flight).
    started_only: int = 0
    corrupt_lines: int = 0
    stale_lines: int = 0

    @property
    def incomplete(self) -> int:
        return len(self.jobs)

    def summary_doc(self) -> dict:
        return {
            "schema": "kiss-recovery/1",
            "admitted": self.admitted,
            "done": self.done,
            "cancelled": self.cancelled,
            "abandoned": self.abandoned,
            "started_only": self.started_only,
            "incomplete": self.incomplete,
            "corrupt_lines": self.corrupt_lines,
            "stale_lines": self.stale_lines,
        }

    def summary(self) -> str:
        head = (
            f"journal: {self.admitted} admitted, {self.done} done, "
            f"{self.cancelled} cancelled, {self.abandoned} abandoned"
        )
        tail = (
            f"recovery: {self.incomplete} incomplete "
            f"({self.started_only} died mid-flight)"
        )
        health = ""
        if self.corrupt_lines or self.stale_lines:
            health = (
                f"\nskipped: {self.corrupt_lines} corrupt, "
                f"{self.stale_lines} stale lines"
            )
        return f"{head}\n{tail}{health}"


def replay(path: str) -> RecoveryPlan:
    """Fold a journal file into a :class:`RecoveryPlan` without
    executing anything.  Torn lines and foreign-schema lines are
    skipped and counted, exactly like the result-cache loader."""
    plan = RecoveryPlan(path=path)
    # job_id -> latest state; precedence: any terminal beats started,
    # stronger terminals beat weaker ones (done > cancelled > abandoned).
    state: Dict[str, dict] = {}
    order: List[str] = []
    if not os.path.exists(path):
        return plan
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                plan.corrupt_lines += 1
                continue
            if not isinstance(doc, dict) or doc.get("schema") != JOURNAL_SCHEMA:
                plan.stale_lines += 1
                continue
            try:
                validate_journal_record(doc)
            except ValueError:
                plan.corrupt_lines += 1
                continue
            job_id = doc["job"]
            event = doc["event"]
            if job_id not in state:
                if event != "admitted":
                    # terminal/started for a job whose admission was torn
                    # away: nothing to recover, nothing to count.
                    plan.stale_lines += 1
                    continue
                state[job_id] = {"spec": None, "key": None, "tenant": None,
                                 "terminal": None, "started": False}
                order.append(job_id)
            entry = state[job_id]
            if event == "admitted":
                # re-admission (a resumed run re-enqueued it): latest
                # spec wins, terminal state resets — the job is owed again.
                entry["spec"] = doc["spec"]
                entry["key"] = doc["key"]
                entry["tenant"] = doc.get("tenant")
                entry["terminal"] = None
                entry["started"] = False
            elif event == "started":
                entry["started"] = True
            else:
                old = entry["terminal"]
                if old is None or _TERMINAL_RANK[event] > _TERMINAL_RANK[old]:
                    entry["terminal"] = event
    for job_id in order:
        entry = state[job_id]
        plan.admitted += 1
        terminal = entry["terminal"]
        if terminal == "done":
            plan.done += 1
            continue
        if terminal == "cancelled":
            plan.cancelled += 1
            continue
        if terminal == "abandoned":
            plan.abandoned += 1
        elif entry["started"]:
            plan.started_only += 1
        try:
            job = CheckJob.from_dict(entry["spec"])
        except (KeyError, TypeError):
            plan.corrupt_lines += 1
            continue
        plan.jobs.append(job)
        plan.keys[job.job_id] = entry["key"]
        plan.tenants[job.job_id] = entry["tenant"]
    return plan
