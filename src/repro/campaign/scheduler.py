"""The campaign scheduler: parallel, cached, fault-tolerant job dispatch.

Given a batch of :class:`~repro.campaign.jobs.CheckJob`, the scheduler

1. resolves each job against the content-addressed result cache
   (cache-warm re-runs skip straight to the summary),
2. dispatches the misses — in-process when ``jobs <= 1`` (preserving
   rich :class:`~repro.core.checker.KissResult` objects for API
   callers), otherwise over a ``ProcessPoolExecutor`` with ``jobs``
   workers,
3. enforces the per-job wall-clock timeout (armed inside the worker,
   see :mod:`repro.campaign.worker`), retrying timeouts and crashes up
   to ``retries`` extra attempts before degrading the job to the
   ``"resource-bound"`` verdict — one diverging field can no longer
   hang or kill a whole run,
4. emits a JSONL telemetry event per transition and an end-of-run
   summary in the shape of the paper's Table 1.

A broken pool (a worker killed by the OOM killer, say) is rebuilt and
the lost jobs resubmitted, bounded by the same retry budget.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.checker import KissResult

from .cache import ResultCache, cache_key
from .jobs import CheckJob, JobResult
from .telemetry import Telemetry, summarize
from .worker import execute_job, pool_entry

DEFAULT_CACHE_DIR = ".kiss-cache"


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


@dataclass
class CampaignConfig:
    """Scheduler knobs.

    ``jobs``: worker processes (<= 1 runs in-process).
    ``timeout``: per-job wall-clock seconds (None = backend budget only).
    ``retries``: extra attempts for a timed-out or crashed job before it
    degrades to ``"resource-bound"``.
    ``cache_dir``: result-cache directory (None disables caching).
    ``telemetry_path``: JSONL event stream destination (None = in-memory
    only).
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    telemetry_path: Optional[str] = None


class CampaignScheduler:
    """Runs job batches under one :class:`CampaignConfig` (see module
    doc).  Reusable: each :meth:`run` call is an independent campaign
    against the same cache."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.cache = ResultCache(self.config.cache_dir)
        #: job_id -> rich KissResult for in-process runs (jobs <= 1).
        self.rich_results: Dict[str, KissResult] = {}

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[CheckJob], telemetry: Optional[Telemetry] = None) -> List[JobResult]:
        """Execute a campaign; returns one :class:`JobResult` per job, in
        input order.  A telemetry stream the scheduler creates itself is
        closed on exit (even on error); a caller-supplied one stays open
        (the caller owns its lifetime)."""
        tel = telemetry or Telemetry(self.config.telemetry_path)
        try:
            return self._run(jobs, tel)
        finally:
            self.last_telemetry = tel
            if telemetry is None:
                tel.close()

    def _run(self, jobs: Sequence[CheckJob], tel: Telemetry) -> List[JobResult]:
        tel.emit(
            "campaign_start",
            jobs=len(jobs),
            workers=max(1, self.config.jobs),
            timeout=self.config.timeout,
            cache=self.cache.enabled,
        )
        self.rich_results.clear()
        results: Dict[str, JobResult] = {}
        todo: List[Tuple[CheckJob, str]] = []
        for job in jobs:
            key = cache_key(job)
            hit = self.cache.get(key)
            if hit is not None:
                hit.job_id = job.job_id  # same content may appear under a new id
                hit.driver = job.driver
                obs.inc("cache_hits")
                self._emit_job_end(tel, job, hit, wall_s=0.0, cache="hit", attempts=0)
                results[job.job_id] = hit
            else:
                todo.append((job, key))

        if todo:
            runner = self._run_serial if self.config.jobs <= 1 else self._run_pool
            for job, key, result in runner(todo, tel):
                self.cache.put(key, result)
                self._emit_job_end(
                    tel, job, result, wall_s=round(result.wall_s, 6),
                    cache="miss" if self.cache.enabled else "off",
                    attempts=result.attempts,
                )
                results[job.job_id] = result

        ordered = [results[j.job_id] for j in jobs]
        verdicts: Dict[str, int] = {}
        for r in ordered:
            verdicts[r.verdict] = verdicts.get(r.verdict, 0) + 1
        tel.emit("campaign_end", jobs=len(jobs), verdicts=verdicts,
                 cache_hits=self.cache.hits, cache_misses=self.cache.misses)
        return ordered

    @staticmethod
    def _emit_job_end(tel: Telemetry, job: CheckJob, result: JobResult, *,
                      wall_s: float, cache: str, attempts: int) -> None:
        extra = {"metrics": result.metrics} if result.metrics is not None else {}
        tel.emit("job_end", job=job.job_id, driver=job.driver, verdict=result.verdict,
                 error_kind=result.error_kind, wall_s=wall_s, states=result.states,
                 cache=cache, attempts=attempts, **extra)

    def summary(self, results: Sequence[JobResult]) -> str:
        wall = None
        tel = getattr(self, "last_telemetry", None)
        if tel is not None and tel.events:
            wall = tel.events[-1]["t"]
        return summarize(results, wall_s=wall)

    # -- attempts ----------------------------------------------------------------

    def _result_from(self, job: CheckJob, outcome: dict, attempts: int) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            driver=job.driver,
            prop=job.prop,
            target=job.target,
            verdict=outcome["verdict"],
            error_kind=outcome.get("error_kind"),
            states=outcome.get("states", 0),
            transitions=outcome.get("transitions", 0),
            checks_emitted=outcome.get("checks_emitted", 0),
            checks_pruned=outcome.get("checks_pruned", 0),
            wall_s=outcome.get("wall_s", 0.0),
            attempts=attempts,
            detail=outcome.get("detail", ""),
            metrics=outcome.get("metrics"),
        )

    def _retryable(self, outcome: dict) -> bool:
        return outcome["verdict"] == "crash" or outcome["detail"].startswith("timeout")

    def _degrade(self, outcome: dict) -> dict:
        """Retry budget exhausted: graceful degradation to resource-bound."""
        if outcome["verdict"] == "crash":
            out = dict(outcome)
            out["verdict"] = "resource-bound"
            return out
        return outcome

    def _run_serial(self, todo, tel: Telemetry):
        for job, key in todo:
            attempts = 0
            while True:
                attempts += 1
                tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempts)
                outcome, rich = execute_job(job, self.config.timeout)
                if not self._retryable(outcome) or attempts > self.config.retries:
                    break
                tel.emit("job_retry", job=job.job_id, attempt=attempts,
                         reason=outcome["detail"][:200])
            if rich is not None:
                self.rich_results[job.job_id] = rich
            yield job, key, self._result_from(job, self._degrade(outcome), attempts)

    def _run_pool(self, todo, tel: Telemetry):
        workers = self.config.jobs
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {}
            for job, key in todo:
                tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=1)
                futures[pool.submit(pool_entry, job, self.config.timeout)] = (job, key, 1)
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for fut in done:
                    meta = futures.pop(fut, None)
                    if meta is None:  # discarded when the pool broke mid-batch
                        continue
                    job, key, attempts = meta
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        # the pool is dead: rebuild it, count the loss as
                        # an attempt for every in-flight job
                        lost = [(j, k, a) for j, k, a in futures.values()]
                        futures.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = ProcessPoolExecutor(max_workers=workers)
                        lost.append((job, key, attempts))
                        for j, k, a in lost:
                            crash = {"verdict": "crash", "error_kind": None, "wall_s": 0.0,
                                     "detail": "crash: worker process died"}
                            if a > self.config.retries:
                                yield j, k, self._result_from(j, self._degrade(crash), a)
                            else:
                                tel.emit("job_retry", job=j.job_id, attempt=a,
                                         reason="worker process died")
                                tel.emit("job_start", job=j.job_id, driver=j.driver,
                                         attempt=a + 1)
                                futures[pool.submit(pool_entry, j, self.config.timeout)] = (
                                    j, k, a + 1)
                        continue
                    except Exception as exc:  # pickling failures etc.
                        outcome = {"verdict": "crash", "error_kind": None, "wall_s": 0.0,
                                   "detail": f"crash: {exc!r}"}
                    if self._retryable(outcome) and attempts <= self.config.retries:
                        tel.emit("job_retry", job=job.job_id, attempt=attempts,
                                 reason=outcome["detail"][:200])
                        tel.emit("job_start", job=job.job_id, driver=job.driver,
                                 attempt=attempts + 1)
                        futures[pool.submit(pool_entry, job, self.config.timeout)] = (
                            job, key, attempts + 1)
                        continue
                    yield job, key, self._result_from(job, self._degrade(outcome), attempts)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_jobs(
    jobs: Sequence[CheckJob], config: Optional[CampaignConfig] = None
) -> List[JobResult]:
    """One-shot convenience wrapper around :class:`CampaignScheduler`."""
    return CampaignScheduler(config).run(jobs)
