"""The batch campaign frontend: run a job list to completion.

:class:`CampaignScheduler` drives a
:class:`~repro.campaign.runtime.CampaignRuntime` — the shared engine
that owns the cache, the worker pool, windowed submission, and the
retry/degrade policy — and adds the *batch* policy on top:

1. resolve every job against the content-addressed result cache up
   front (cache-warm re-runs skip straight to the summary),
2. pump the engine until the batch is done, checking the stop
   conditions between engine steps,
3. on SIGINT/SIGTERM, stop submitting, drain the in-flight jobs, and
   degrade the remainder to ``resource-bound`` (detail
   ``interrupted:``); on a campaign ``deadline``, additionally *cancel*
   the in-flight jobs cooperatively (they settle as ``cancelled``
   within one backend poll instead of running to completion) — either
   way the summary stays schema-valid and an immediate re-run resumes
   where the stop landed,
4. return results in input order and render the end-of-run summary in
   the shape of the paper's Table 1.

A frontend riding on the scheduler can also stop a batch early from a
result callback: ``run(jobs, on_result=...)`` invokes the callback
after every recorded result, and :meth:`request_cancel` makes the next
engine step cancel everything still outstanding — the swarm
first-error path (see :mod:`repro.campaign.swarm`).

Per-job behavior — in-worker timeouts, bounded retries before
degradation, broken-pool rebuild, memory ceilings, fault injection —
lives in the runtime (see :mod:`repro.campaign.runtime` and
docs/ROBUSTNESS.md); this module only decides *when to stop*.

Interrupted/deadline remainders are never cached and count toward the
``jobs_interrupted`` obs counter.  A :class:`~repro.faults.FaultPlan`
in the config is installed in the scheduler's process and shipped to
every pool worker, firing at the named fault points for chaos testing.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro import faults

from .jobs import CheckJob, JobResult
from .runtime import (  # noqa: F401  (re-exported API)
    DEFAULT_CACHE_DIR,
    POLL_S as _POLL_S,
    CampaignConfig,
    CampaignRuntime,
    default_jobs,
)
from .telemetry import Telemetry, summarize, summary_document


class CampaignScheduler:
    """Runs job batches under one :class:`CampaignConfig` (see module
    doc).  Reusable: each :meth:`run` call is an independent campaign
    against the same cache."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.runtime = CampaignRuntime(self.config)
        #: signal name (``"SIGINT"``/``"SIGTERM"``) when the last run
        #: was gracefully interrupted, else None.
        self.interrupted: Optional[str] = None
        #: True when the last run hit its campaign deadline.
        self.deadline_hit = False
        self._stop_detail: Optional[str] = None
        self._interrupt_signal: Optional[int] = None
        self._deadline_at: Optional[float] = None
        self._cancel_reason: Optional[str] = None
        self._cancel_applied = False

    @property
    def cache(self):
        """The runtime's content-addressed result cache."""
        return self.runtime.cache

    @property
    def rich_results(self):
        """job_id -> rich KissResult for in-process runs (jobs <= 1)."""
        return self.runtime.rich_results

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[CheckJob], telemetry: Optional[Telemetry] = None,
            on_result: Optional[Callable[[JobResult], None]] = None) -> List[JobResult]:
        """Execute a campaign; returns one :class:`JobResult` per job, in
        input order.  A telemetry stream the scheduler creates itself is
        closed on exit (even on error); a caller-supplied one stays open
        (the caller owns its lifetime).  ``on_result`` is invoked after
        every recorded result (cache hits included) and may call
        :meth:`request_cancel` to stop the batch early."""
        tel = telemetry or Telemetry(self.config.telemetry_path)
        try:
            with faults.plan_context(self.config.fault_plan):
                return self._run(jobs, tel, on_result)
        finally:
            self.last_telemetry = tel
            if telemetry is None:
                tel.close()

    def request_cancel(self, reason: str = "") -> None:
        """Ask the running batch to cancel everything still outstanding
        (pending jobs settle immediately, in-flight jobs within one
        backend poll).  Intended to be called from an ``on_result``
        callback; sticky for the rest of the run."""
        if self._cancel_reason is None:
            self._cancel_reason = reason

    def _run(self, jobs: Sequence[CheckJob], tel: Telemetry,
             on_result: Optional[Callable[[JobResult], None]] = None) -> List[JobResult]:
        rt = self.runtime
        self.interrupted = None
        self.deadline_hit = False
        self._stop_detail = None
        self._interrupt_signal = None
        self._cancel_reason = None
        self._cancel_applied = False
        self._deadline_at = (
            time.monotonic() + self.config.deadline
            if self.config.deadline is not None
            else None
        )
        tel.emit(
            "campaign_start",
            jobs=len(jobs),
            workers=max(1, self.config.jobs),
            timeout=self.config.timeout,
            cache=rt.cache.enabled,
        )
        rt.rich_results.clear()
        results: Dict[str, JobResult] = {}
        for job in jobs:
            key, hit = rt.lookup(job, tel)
            if hit is not None:
                results[job.job_id] = hit
                if on_result is not None:
                    on_result(hit)
            else:
                rt.submit(job, key)

        if not rt.idle:
            prev_handlers = self._install_signal_handlers()
            try:
                while not rt.idle:
                    faults.fire("engine_crash")
                    stop = self._check_stop(tel, remaining=rt.outstanding)
                    if stop is not None and rt.inflight == 0:
                        # Drained: degrade the never-submitted remainder.
                        for job, key, result in rt.drain_pending(stop):
                            rt.record(tel, job, key, result)
                            results[job.job_id] = result
                        break
                    if self._cancel_reason is not None and not self._cancel_applied:
                        # A first-error (or other frontend) cancellation:
                        # pending jobs settle right now, in-flight tokens
                        # are touched and surface through later pumps.
                        self._cancel_applied = True
                        for job, key, result in rt.cancel_outstanding(self._cancel_reason):
                            rt.record(tel, job, key, result)
                            results[job.job_id] = result
                        continue
                    submitting = stop is None and self._cancel_reason is None
                    for job, key, result in rt.pump(tel, submit=submitting):
                        rt.record(tel, job, key, result)
                        results[job.job_id] = result
                        if on_result is not None:
                            on_result(result)
            finally:
                self._restore_signal_handlers(prev_handlers)
                rt.close()

        ordered = [results[j.job_id] for j in jobs]
        verdicts: Dict[str, int] = {}
        for r in ordered:
            verdicts[r.verdict] = verdicts.get(r.verdict, 0) + 1
        tel.emit("campaign_end", jobs=len(jobs), verdicts=verdicts,
                 cache_hits=rt.cache.hits, cache_misses=rt.cache.misses,
                 interrupted=self.interrupted, deadline_hit=self.deadline_hit)
        return ordered

    # -- graceful stop (SIGINT/SIGTERM, campaign deadline) -----------------------

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to a stop flag for the duration of a
        run (main thread only — elsewhere the default handling stands).
        The flag is checked between engine steps, so the campaign drains
        in-flight jobs instead of dying mid-write."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def request_stop(signum, frame):
            self._interrupt_signal = signum

        prev = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                prev[sig] = signal.signal(sig, request_stop)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        return prev

    @staticmethod
    def _restore_signal_handlers(prev) -> None:
        if not prev:
            return
        for sig, handler in prev.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _check_stop(self, tel: Telemetry, remaining: int) -> Optional[str]:
        """The degraded-detail string once the campaign should stop
        taking new work (sticky), else None.  Emits the one-shot
        ``campaign_interrupted``/``campaign_deadline`` event on the
        transition."""
        if self._stop_detail is not None:
            return self._stop_detail
        if self._interrupt_signal is not None:
            name = signal.Signals(self._interrupt_signal).name
            self.interrupted = name
            self._stop_detail = f"interrupted: {name}"
            tel.emit("campaign_interrupted", signal=name, remaining=remaining)
        elif self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self.deadline_hit = True
            self._stop_detail = f"deadline: exceeded {self.config.deadline}s"
            tel.emit("campaign_deadline", deadline=self.config.deadline,
                     remaining=remaining)
            # Past the deadline the in-flight jobs are *cancelled*
            # (settling within one backend poll) instead of running to
            # completion; the never-submitted remainder still degrades
            # with the ``deadline:`` detail at drain time.
            self.runtime.cancel_outstanding("deadline", include_pending=False)
        return self._stop_detail

    # -- summaries ---------------------------------------------------------------

    def summary(self, results: Sequence[JobResult]) -> str:
        wall = None
        tel = getattr(self, "last_telemetry", None)
        if tel is not None and tel.events:
            wall = tel.events[-1]["t"]
        return summarize(results, wall_s=wall)

    def summary_doc(self, results: Sequence[JobResult]) -> dict:
        """The machine-readable ``kiss-campaign/1`` summary for the last
        run (schema-valid even for an interrupted, partial campaign)."""
        wall = None
        tel = getattr(self, "last_telemetry", None)
        if tel is not None and tel.events:
            wall = tel.events[-1]["t"]
        return summary_document(
            results,
            interrupted=self.interrupted,
            deadline_hit=self.deadline_hit,
            wall_s=wall,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )


def run_jobs(
    jobs: Sequence[CheckJob], config: Optional[CampaignConfig] = None
) -> List[JobResult]:
    """One-shot convenience wrapper around :class:`CampaignScheduler`."""
    return CampaignScheduler(config).run(jobs)
