"""The campaign scheduler: parallel, cached, fault-tolerant job dispatch.

Given a batch of :class:`~repro.campaign.jobs.CheckJob`, the scheduler

1. resolves each job against the content-addressed result cache
   (cache-warm re-runs skip straight to the summary),
2. dispatches the misses — in-process when ``jobs <= 1`` (preserving
   rich :class:`~repro.core.checker.KissResult` objects for API
   callers), otherwise over a ``ProcessPoolExecutor`` with ``jobs``
   workers (submission is incremental — a bounded in-flight window —
   so a stop request never strands a long queue of submitted futures),
3. enforces the per-job wall-clock timeout (armed inside the worker,
   see :mod:`repro.campaign.worker`), retrying timeouts and crashes up
   to ``retries`` extra attempts before degrading the job to the
   ``"resource-bound"`` verdict — one diverging field can no longer
   hang or kill a whole run,
4. emits a JSONL telemetry event per transition and an end-of-run
   summary in the shape of the paper's Table 1.

A broken pool (a worker killed by the OOM killer, say) is rebuilt and
the lost jobs resubmitted, bounded by the same retry budget.

Termination is guaranteed three further ways (docs/ROBUSTNESS.md):

* ``memory_limit`` arms a per-worker ``RLIMIT_AS`` soft ceiling, so a
  runaway job raises ``MemoryError`` inside its worker and degrades to
  ``resource-bound`` instead of summoning the OOM killer;
* ``deadline`` bounds the whole campaign: past it, the scheduler stops
  submitting, drains the in-flight jobs, and marks the remainder
  ``resource-bound`` (detail ``deadline:``);
* SIGINT/SIGTERM trigger the same graceful drain (detail
  ``interrupted:``), emit a ``campaign_interrupted`` event, and leave
  every completed job in the cache — the summary stays schema-valid and
  an immediate re-run resumes where the interrupt landed.

Interrupted/deadline remainders are never cached and count toward the
``jobs_interrupted`` obs counter.  A :class:`~repro.faults.FaultPlan`
in the config is installed in the scheduler's process and shipped to
every pool worker, firing at the named fault points for chaos testing.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro import faults, obs
from repro.core.checker import KissResult
from repro.faults import FaultPlan, InjectedFault

from .cache import ResultCache, cache_key
from .jobs import CheckJob, JobResult
from .telemetry import Telemetry, summarize, summary_document
from .worker import execute_job, pool_entry, pool_init

DEFAULT_CACHE_DIR = ".kiss-cache"

#: How long one ``wait`` call may block before the loop re-checks the
#: deadline and interrupt flags (signals set a flag; they must not have
#: to race a long-blocking wait).
_POLL_S = 0.25


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


@dataclass
class CampaignConfig:
    """Scheduler knobs.

    ``jobs``: worker processes (<= 1 runs in-process).
    ``timeout``: per-job wall-clock seconds (None = backend budget only).
    ``retries``: extra attempts for a timed-out or crashed job before it
    degrades to ``"resource-bound"``.
    ``cache_dir``: result-cache directory (None disables caching).
    ``telemetry_path``: JSONL event stream destination (None = in-memory
    only).
    ``deadline``: campaign-wide wall-clock budget in seconds; past it
    the remainder degrades to ``"resource-bound"`` (detail
    ``deadline:``) instead of running.
    ``memory_limit``: per-worker ``RLIMIT_AS`` soft ceiling in MB; an
    over-budget job degrades to ``"resource-bound"`` (detail
    ``memory:``) instead of taking the pool down.
    ``fault_plan``: a :class:`~repro.faults.FaultPlan` for chaos runs
    (None = no injection, zero overhead).
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    telemetry_path: Optional[str] = None
    deadline: Optional[float] = None
    memory_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None


class CampaignScheduler:
    """Runs job batches under one :class:`CampaignConfig` (see module
    doc).  Reusable: each :meth:`run` call is an independent campaign
    against the same cache."""

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.cache = ResultCache(self.config.cache_dir)
        #: job_id -> rich KissResult for in-process runs (jobs <= 1).
        self.rich_results: Dict[str, KissResult] = {}
        #: signal name (``"SIGINT"``/``"SIGTERM"``) when the last run
        #: was gracefully interrupted, else None.
        self.interrupted: Optional[str] = None
        #: True when the last run hit its campaign deadline.
        self.deadline_hit = False
        self._stop_detail: Optional[str] = None
        self._interrupt_signal: Optional[int] = None
        self._deadline_at: Optional[float] = None

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[CheckJob], telemetry: Optional[Telemetry] = None) -> List[JobResult]:
        """Execute a campaign; returns one :class:`JobResult` per job, in
        input order.  A telemetry stream the scheduler creates itself is
        closed on exit (even on error); a caller-supplied one stays open
        (the caller owns its lifetime)."""
        tel = telemetry or Telemetry(self.config.telemetry_path)
        try:
            with faults.plan_context(self.config.fault_plan):
                return self._run(jobs, tel)
        finally:
            self.last_telemetry = tel
            if telemetry is None:
                tel.close()

    def _run(self, jobs: Sequence[CheckJob], tel: Telemetry) -> List[JobResult]:
        self.interrupted = None
        self.deadline_hit = False
        self._stop_detail = None
        self._interrupt_signal = None
        self._deadline_at = (
            time.monotonic() + self.config.deadline
            if self.config.deadline is not None
            else None
        )
        tel.emit(
            "campaign_start",
            jobs=len(jobs),
            workers=max(1, self.config.jobs),
            timeout=self.config.timeout,
            cache=self.cache.enabled,
        )
        self.rich_results.clear()
        results: Dict[str, JobResult] = {}
        todo: List[Tuple[CheckJob, str]] = []
        for job in jobs:
            key = cache_key(job)
            hit = self.cache.get(key)
            if hit is not None:
                hit.job_id = job.job_id  # same content may appear under a new id
                hit.driver = job.driver
                obs.inc("cache_hits")
                self._emit_job_end(tel, job, hit, wall_s=0.0, cache="hit", attempts=0)
                results[job.job_id] = hit
            else:
                todo.append((job, key))

        if todo:
            prev_handlers = self._install_signal_handlers()
            try:
                runner = self._run_serial if self.config.jobs <= 1 else self._run_pool
                for job, key, result in runner(todo, tel):
                    self.cache.put(key, result)
                    self._emit_job_end(
                        tel, job, result, wall_s=round(result.wall_s, 6),
                        cache="miss" if self.cache.enabled else "off",
                        attempts=result.attempts,
                    )
                    results[job.job_id] = result
            finally:
                self._restore_signal_handlers(prev_handlers)

        ordered = [results[j.job_id] for j in jobs]
        verdicts: Dict[str, int] = {}
        for r in ordered:
            verdicts[r.verdict] = verdicts.get(r.verdict, 0) + 1
        tel.emit("campaign_end", jobs=len(jobs), verdicts=verdicts,
                 cache_hits=self.cache.hits, cache_misses=self.cache.misses,
                 interrupted=self.interrupted, deadline_hit=self.deadline_hit)
        return ordered

    # -- graceful stop (SIGINT/SIGTERM, campaign deadline) -----------------------

    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM to a stop flag for the duration of a
        run (main thread only — elsewhere the default handling stands).
        The flag is checked between submissions and waits, so the
        campaign drains in-flight jobs instead of dying mid-write."""
        if threading.current_thread() is not threading.main_thread():
            return None

        def request_stop(signum, frame):
            self._interrupt_signal = signum

        prev = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                prev[sig] = signal.signal(sig, request_stop)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        return prev

    @staticmethod
    def _restore_signal_handlers(prev) -> None:
        if not prev:
            return
        for sig, handler in prev.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _check_stop(self, tel: Telemetry, remaining: int) -> Optional[str]:
        """The degraded-detail string once the campaign should stop
        taking new work (sticky), else None.  Emits the one-shot
        ``campaign_interrupted``/``campaign_deadline`` event on the
        transition."""
        if self._stop_detail is not None:
            return self._stop_detail
        if self._interrupt_signal is not None:
            name = signal.Signals(self._interrupt_signal).name
            self.interrupted = name
            self._stop_detail = f"interrupted: {name}"
            tel.emit("campaign_interrupted", signal=name, remaining=remaining)
        elif self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self.deadline_hit = True
            self._stop_detail = f"deadline: exceeded {self.config.deadline}s"
            tel.emit("campaign_deadline", deadline=self.config.deadline,
                     remaining=remaining)
        return self._stop_detail

    def _skipped_result(self, job: CheckJob, detail: str) -> JobResult:
        """A never-ran remainder job: ``resource-bound``, zero attempts,
        never cached (the detail prefix keeps it out of the store)."""
        obs.inc("jobs_interrupted")
        return JobResult(
            job_id=job.job_id, driver=job.driver, prop=job.prop, target=job.target,
            verdict="resource-bound", attempts=0, detail=detail,
        )

    @staticmethod
    def _emit_job_end(tel: Telemetry, job: CheckJob, result: JobResult, *,
                      wall_s: float, cache: str, attempts: int) -> None:
        extra = {"metrics": result.metrics} if result.metrics is not None else {}
        tel.emit("job_end", job=job.job_id, driver=job.driver, verdict=result.verdict,
                 error_kind=result.error_kind, wall_s=wall_s, states=result.states,
                 cache=cache, attempts=attempts, **extra)

    def summary(self, results: Sequence[JobResult]) -> str:
        wall = None
        tel = getattr(self, "last_telemetry", None)
        if tel is not None and tel.events:
            wall = tel.events[-1]["t"]
        return summarize(results, wall_s=wall)

    def summary_doc(self, results: Sequence[JobResult]) -> dict:
        """The machine-readable ``kiss-campaign/1`` summary for the last
        run (schema-valid even for an interrupted, partial campaign)."""
        wall = None
        tel = getattr(self, "last_telemetry", None)
        if tel is not None and tel.events:
            wall = tel.events[-1]["t"]
        return summary_document(
            results,
            interrupted=self.interrupted,
            deadline_hit=self.deadline_hit,
            wall_s=wall,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
        )

    # -- attempts ----------------------------------------------------------------

    def _result_from(self, job: CheckJob, outcome: dict, attempts: int) -> JobResult:
        if outcome["detail"].startswith("memory:"):
            obs.inc("memory_ceiling_hits")
        return JobResult(
            job_id=job.job_id,
            driver=job.driver,
            prop=job.prop,
            target=job.target,
            verdict=outcome["verdict"],
            error_kind=outcome.get("error_kind"),
            states=outcome.get("states", 0),
            transitions=outcome.get("transitions", 0),
            checks_emitted=outcome.get("checks_emitted", 0),
            checks_pruned=outcome.get("checks_pruned", 0),
            wall_s=outcome.get("wall_s", 0.0),
            attempts=attempts,
            detail=outcome.get("detail", ""),
            metrics=outcome.get("metrics"),
        )

    def _retryable(self, outcome: dict) -> bool:
        return outcome["verdict"] == "crash" or outcome["detail"].startswith("timeout")

    def _degrade(self, outcome: dict) -> dict:
        """Retry budget exhausted: graceful degradation to resource-bound."""
        if outcome["verdict"] == "crash":
            out = dict(outcome)
            out["verdict"] = "resource-bound"
            return out
        return outcome

    @staticmethod
    def _crash_outcome(detail: str) -> dict:
        return {"verdict": "crash", "error_kind": None, "wall_s": 0.0, "detail": detail}

    def _run_serial(self, todo, tel: Telemetry):
        for idx, (job, key) in enumerate(todo):
            stop = self._check_stop(tel, remaining=len(todo) - idx)
            if stop is not None:
                for j, k in todo[idx:]:
                    yield j, k, self._skipped_result(j, stop)
                return
            attempts = 0
            while True:
                attempts += 1
                tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempts)
                outcome, rich = execute_job(
                    job, self.config.timeout, attempt=attempts,
                    memory_limit=self.config.memory_limit,
                )
                if not self._retryable(outcome) or attempts > self.config.retries:
                    break
                tel.emit("job_retry", job=job.job_id, attempt=attempts,
                         reason=outcome["detail"][:200])
            if rich is not None:
                self.rich_results[job.job_id] = rich
            yield job, key, self._result_from(job, self._degrade(outcome), attempts)

    # -- pool dispatch -----------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.config.jobs,
            initializer=pool_init,
            initargs=(self.config.memory_limit, self.config.fault_plan),
        )

    def _submit(self, pool: ProcessPoolExecutor, tel: Telemetry, job: CheckJob,
                attempt: int):
        """Submit one attempt (the ``pool_submit`` fault point lives
        here); returns the future, or None when an injected fault made
        the submission fail — the caller treats that as a crash
        attempt."""
        tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempt)
        try:
            # submission happens on behalf of a job: give job-pinned
            # fault rules a context to match against
            with faults.job_context(job_id=job.job_id, attempt=attempt):
                faults.fire("pool_submit")
            return pool.submit(pool_entry, job, self.config.timeout, attempt)
        except InjectedFault:
            return None

    def _run_pool(self, todo, tel: Telemetry):
        workers = self.config.jobs
        window = workers * 2  # bounded in-flight set: stop requests stay cheap
        pool = self._new_pool()
        pending: Deque[Tuple[CheckJob, str, int]] = deque(
            (job, key, 1) for job, key in todo
        )
        futures: Dict[object, Tuple[CheckJob, str, int]] = {}
        try:
            while pending or futures:
                stop = self._check_stop(tel, remaining=len(pending) + len(futures))
                if stop is None:
                    while pending and len(futures) < window:
                        job, key, attempt = pending.popleft()
                        fut = self._submit(pool, tel, job, attempt)
                        if fut is None:
                            crash = self._crash_outcome("crash: pool submission failed")
                            if attempt <= self.config.retries:
                                tel.emit("job_retry", job=job.job_id, attempt=attempt,
                                         reason="pool submission failed")
                                pending.append((job, key, attempt + 1))
                            else:
                                yield job, key, self._result_from(
                                    job, self._degrade(crash), attempt)
                            continue
                        futures[fut] = (job, key, attempt)
                elif not futures:
                    # Drained: degrade the never-submitted remainder.
                    while pending:
                        job, key, _ = pending.popleft()
                        yield job, key, self._skipped_result(job, stop)
                    return
                if not futures:
                    continue
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED,
                               timeout=_POLL_S)
                for fut in done:
                    meta = futures.pop(fut, None)
                    if meta is None:  # discarded when the pool broke mid-batch
                        continue
                    job, key, attempt = meta
                    try:
                        outcome = fut.result()
                    except BrokenProcessPool:
                        # The pool is dead: rebuild it, count the loss as
                        # an attempt for every in-flight job.
                        lost = [(job, key, attempt)] + list(futures.values())
                        futures.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = self._new_pool()
                        for j, k, a in lost:
                            crash = self._crash_outcome("crash: worker process died")
                            if a > self.config.retries:
                                yield j, k, self._result_from(j, self._degrade(crash), a)
                            else:
                                tel.emit("job_retry", job=j.job_id, attempt=a,
                                         reason="worker process died")
                                pending.appendleft((j, k, a + 1))
                        break  # the futures set changed wholesale
                    except Exception as exc:  # pickling failures etc.
                        outcome = self._crash_outcome(f"crash: {exc!r}")
                    if self._retryable(outcome) and attempt <= self.config.retries:
                        tel.emit("job_retry", job=job.job_id, attempt=attempt,
                                 reason=outcome["detail"][:200])
                        pending.appendleft((job, key, attempt + 1))
                        continue
                    yield job, key, self._result_from(job, self._degrade(outcome), attempt)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def run_jobs(
    jobs: Sequence[CheckJob], config: Optional[CampaignConfig] = None
) -> List[JobResult]:
    """One-shot convenience wrapper around :class:`CampaignScheduler`."""
    return CampaignScheduler(config).run(jobs)
