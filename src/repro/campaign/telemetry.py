"""Structured telemetry for campaign runs.

Every scheduler action emits one JSON object (``campaign_start``,
``job_start``, ``job_end``, ``job_retry``, ``campaign_end``) with a
monotonic-relative timestamp ``t`` in seconds.  Events stream to a JSONL
file when a path is given and are always kept in memory (they are small)
for tests and the end-of-run summary.

The event envelope is shared with the span stream of :mod:`repro.obs`
(both build events with :func:`repro.obs.make_event`), so one JSONL file
can interleave scheduler events and per-job phase traces; ``job_end``
events carry the worker's ``kiss-metrics/1`` snapshot under ``metrics``
when a job ran with the ``observe`` execution option.

``Telemetry`` owns a file handle when given a path; close it with
:meth:`close` or use the instance as a context manager (the scheduler
does the latter for streams it creates).

The summary reproduces the shape of the paper's Table 1: one row per
driver with race / no-race / unresolved counts, plus campaign-level
cache and wall-clock totals.
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, List, Optional, Sequence

from repro.obs import make_event
from repro.reporting import render_table

from .jobs import JobResult


class Telemetry:
    """JSONL event stream (see module doc)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[dict] = []
        self._t0 = time.monotonic()
        self._fh: Optional[IO[str]] = open(path, "w") if path else None

    def emit(self, event: str, **fields) -> dict:
        obj = make_event(event, time.monotonic() - self._t0, **fields)
        self.events.append(obj)
        if self._fh is not None:
            self._fh.write(json.dumps(obj) + "\n")
            self._fh.flush()
        return obj

    @property
    def closed(self) -> bool:
        """True when no file handle is open (also for in-memory streams)."""
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def of_kind(self, event: str) -> List[dict]:
        return [e for e in self.events if e["event"] == event]


# ---------------------------------------------------------------------------
# End-of-run summary
# ---------------------------------------------------------------------------


def summarize(results: Sequence[JobResult], wall_s: Optional[float] = None) -> str:
    """Render the end-of-run summary table (Table 1 shape) plus the
    cache/wall totals line."""
    drivers: Dict[str, List[JobResult]] = {}
    for r in results:
        drivers.setdefault(r.driver, []).append(r)

    def count(rs, v):
        return sum(1 for r in rs if r.table_verdict == v)

    rows = []
    for name, rs in drivers.items():
        rows.append(
            [
                name,
                len(rs),
                count(rs, "race"),
                count(rs, "no-race"),
                count(rs, "unresolved"),
                sum(1 for r in rs if r.cache_hit),
                round(sum(r.wall_s for r in rs), 2),
            ]
        )
    total = [
        "Total",
        len(results),
        count(results, "race"),
        count(results, "no-race"),
        count(results, "unresolved"),
        sum(1 for r in results if r.cache_hit),
        round(sum(r.wall_s for r in results), 2),
    ]
    rows.append(total)
    table = render_table(
        ["Driver", "Fields", "Races", "No Races", "Unresolved", "Cached", "Wall(s)"],
        rows,
        title="Campaign summary (Table 1 shape)",
    )
    hits = total[5]
    n = len(results) or 1
    lines = [table, f"cache: skipped {hits}/{len(results)} jobs ({100.0 * hits / n:.0f}%)"]
    if wall_s is not None:
        lines.append(f"campaign wall clock: {wall_s:.2f}s")
    return "\n".join(lines)
