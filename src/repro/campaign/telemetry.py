"""Structured telemetry for campaign runs.

Every scheduler action emits one JSON object (``campaign_start``,
``job_start``, ``job_end``, ``job_retry``, ``campaign_end``) with a
monotonic-relative timestamp ``t`` in seconds.  Events stream to a JSONL
file when a path is given and are always kept in memory (they are small)
for tests and the end-of-run summary.

The event envelope is shared with the span stream of :mod:`repro.obs`
(both build events with :func:`repro.obs.make_event`), so one JSONL file
can interleave scheduler events and per-job phase traces; ``job_end``
events carry the worker's ``kiss-metrics/1`` snapshot under ``metrics``
when a job ran with the ``observe`` execution option.

``Telemetry`` owns a file handle when given a path; close it with
:meth:`close` or use the instance as a context manager (the scheduler
does the latter for streams it creates).  A stream write that fails at
the OS level (disk full, or an injected ``telemetry_emit`` fault —
:mod:`repro.faults`) degrades the stream to in-memory-only for the rest
of the run: events are never lost from memory, and a half-written file
is never appended to again.

The summary reproduces the shape of the paper's Table 1: one row per
driver with race / no-race / unresolved counts, plus campaign-level
cache and wall-clock totals.  :func:`summary_document` renders the same
information as a schema-tagged JSON document (``kiss-campaign/1``) that
stays well-formed even for a partial, interrupted campaign;
:func:`validate_summary` (defined with every other document schema in
:mod:`repro.schemas`, re-exported here) is the corresponding checker.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, IO, List, Optional, Sequence

from repro import faults, obs, package_version
from repro.obs import make_event
from repro.reporting import render_table
from repro.schemas import CAMPAIGN_SCHEMA, validate_summary  # noqa: F401

from .jobs import JobResult

#: Schema tag of :func:`summary_document` artifacts.
SUMMARY_SCHEMA = CAMPAIGN_SCHEMA

#: Detail prefixes marking a job the campaign never ran to completion
#: (graceful-interrupt or deadline remainders, cooperative
#: cancellations).
INTERRUPTED_DETAIL_PREFIXES = ("interrupted", "deadline", "cancelled")


class Telemetry:
    """JSONL event stream (see module doc)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[dict] = []
        #: stream writes that failed; > 0 means the file is partial.
        self.write_errors = 0
        self._t0 = time.monotonic()
        self._fh: Optional[IO[str]] = open(path, "w") if path else None

    def emit(self, event: str, **fields) -> dict:
        obj = make_event(event, time.monotonic() - self._t0, **fields)
        self.events.append(obj)
        if self._fh is not None:
            try:
                faults.fire("telemetry_emit")
                self._fh.write(faults.corrupt("telemetry_emit", json.dumps(obj) + "\n"))
                self._fh.flush()
            except OSError:
                # Degrade to in-memory only: the event survives in
                # self.events, and we stop appending to a file that may
                # now end mid-line.
                self.write_errors += 1
                obs.inc("telemetry_write_errors")
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
        return obj

    @property
    def closed(self) -> bool:
        """True when no file handle is open (also for in-memory streams)."""
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def of_kind(self, event: str) -> List[dict]:
        return [e for e in self.events if e["event"] == event]


# ---------------------------------------------------------------------------
# End-of-run summary
# ---------------------------------------------------------------------------


def summarize(results: Sequence[JobResult], wall_s: Optional[float] = None) -> str:
    """Render the end-of-run summary table (Table 1 shape) plus the
    cache/wall totals line."""
    drivers: Dict[str, List[JobResult]] = {}
    for r in results:
        drivers.setdefault(r.driver, []).append(r)

    def count(rs, v):
        return sum(1 for r in rs if r.table_verdict == v)

    rows = []
    for name, rs in drivers.items():
        rows.append(
            [
                name,
                len(rs),
                count(rs, "race"),
                count(rs, "no-race"),
                count(rs, "unresolved"),
                sum(1 for r in rs if r.cache_hit),
                round(sum(r.wall_s for r in rs), 2),
            ]
        )
    total = [
        "Total",
        len(results),
        count(results, "race"),
        count(results, "no-race"),
        count(results, "unresolved"),
        sum(1 for r in results if r.cache_hit),
        round(sum(r.wall_s for r in results), 2),
    ]
    rows.append(total)
    table = render_table(
        ["Driver", "Fields", "Races", "No Races", "Unresolved", "Cached", "Wall(s)"],
        rows,
        title="Campaign summary (Table 1 shape)",
    )
    hits = total[5]
    n = len(results) or 1
    lines = [table, f"cache: skipped {hits}/{len(results)} jobs ({100.0 * hits / n:.0f}%)"]
    if wall_s is not None:
        lines.append(f"campaign wall clock: {wall_s:.2f}s")
    return "\n".join(lines)


def summary_document(
    results: Sequence[JobResult],
    *,
    interrupted: Optional[str] = None,
    deadline_hit: bool = False,
    wall_s: Optional[float] = None,
    cache_hits: int = 0,
    cache_misses: int = 0,
) -> Dict[str, Any]:
    """The machine-readable campaign summary (``kiss-campaign/1``).

    Always complete and schema-valid, even when the campaign was
    interrupted: remainder jobs (detail ``interrupted:``/``deadline:``)
    and cooperatively cancelled jobs (detail ``cancelled``) are counted
    under ``interrupted_jobs`` and still appear in the verdict tallies
    (as ``resource-bound`` or ``cancelled``, both ``unresolved`` in the
    table vocabulary), so ``jobs == completed + interrupted_jobs``
    holds by construction.
    """
    verdicts: Dict[str, int] = {}
    table: Dict[str, int] = {}
    drivers: Dict[str, Dict[str, Any]] = {}
    interrupted_jobs = 0
    for r in results:
        verdicts[r.verdict] = verdicts.get(r.verdict, 0) + 1
        table[r.table_verdict] = table.get(r.table_verdict, 0) + 1
        if r.detail.startswith(INTERRUPTED_DETAIL_PREFIXES):
            interrupted_jobs += 1
        row = drivers.setdefault(
            r.driver,
            {"driver": r.driver, "fields": 0, "race": 0, "no-race": 0,
             "unresolved": 0, "other": 0, "cached": 0, "wall_s": 0.0},
        )
        row["fields"] += 1
        # Assertion/fuzz jobs use the safe/error vocabulary; the Table 1
        # columns only know races, so they land in "other".
        bucket = r.table_verdict if r.table_verdict in ("race", "no-race", "unresolved") else "other"
        row[bucket] += 1
        row["cached"] += 1 if r.cache_hit else 0
        row["wall_s"] = round(row["wall_s"] + r.wall_s, 6)
    return {
        "schema": SUMMARY_SCHEMA,
        "version": package_version(),
        "jobs": len(results),
        "completed": len(results) - interrupted_jobs,
        "interrupted_jobs": interrupted_jobs,
        "interrupted": interrupted,
        "deadline_hit": deadline_hit,
        "verdicts": verdicts,
        "table": table,
        "drivers": list(drivers.values()),
        "cache": {"hits": cache_hits, "misses": cache_misses},
        "wall_s": None if wall_s is None else round(wall_s, 6),
    }
