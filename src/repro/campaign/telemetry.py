"""Structured telemetry for campaign runs.

Every scheduler action emits one JSON object (``campaign_start``,
``job_start``, ``job_end``, ``job_retry``, ``campaign_end``) with a
monotonic-relative timestamp ``t`` in seconds.  Events stream to a JSONL
file when a path is given and are always kept in memory (they are small)
for tests and the end-of-run summary.

The summary reproduces the shape of the paper's Table 1: one row per
driver with race / no-race / unresolved counts, plus campaign-level
cache and wall-clock totals.
"""

from __future__ import annotations

import json
import time
from typing import Dict, IO, List, Optional, Sequence

from repro.reporting import render_table

from .jobs import JobResult


class Telemetry:
    """JSONL event stream (see module doc)."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.events: List[dict] = []
        self._t0 = time.monotonic()
        self._fh: Optional[IO[str]] = open(path, "w") if path else None

    def emit(self, event: str, **fields) -> dict:
        obj = {"event": event, "t": round(time.monotonic() - self._t0, 6)}
        obj.update(fields)
        self.events.append(obj)
        if self._fh is not None:
            self._fh.write(json.dumps(obj) + "\n")
            self._fh.flush()
        return obj

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def of_kind(self, event: str) -> List[dict]:
        return [e for e in self.events if e["event"] == event]


# ---------------------------------------------------------------------------
# End-of-run summary
# ---------------------------------------------------------------------------


def summarize(results: Sequence[JobResult], wall_s: Optional[float] = None) -> str:
    """Render the end-of-run summary table (Table 1 shape) plus the
    cache/wall totals line."""
    drivers: Dict[str, List[JobResult]] = {}
    for r in results:
        drivers.setdefault(r.driver, []).append(r)

    def count(rs, v):
        return sum(1 for r in rs if r.table_verdict == v)

    rows = []
    for name, rs in drivers.items():
        rows.append(
            [
                name,
                len(rs),
                count(rs, "race"),
                count(rs, "no-race"),
                count(rs, "unresolved"),
                sum(1 for r in rs if r.cache_hit),
                round(sum(r.wall_s for r in rs), 2),
            ]
        )
    total = [
        "Total",
        len(results),
        count(results, "race"),
        count(results, "no-race"),
        count(results, "unresolved"),
        sum(1 for r in results if r.cache_hit),
        round(sum(r.wall_s for r in results), 2),
    ]
    rows.append(total)
    table = render_table(
        ["Driver", "Fields", "Races", "No Races", "Unresolved", "Cached", "Wall(s)"],
        rows,
        title="Campaign summary (Table 1 shape)",
    )
    hits = total[5]
    n = len(results) or 1
    lines = [table, f"cache: skipped {hits}/{len(results)} jobs ({100.0 * hits / n:.0f}%)"]
    if wall_s is not None:
        lines.append(f"campaign wall clock: {wall_s:.2f}s")
    return "\n".join(lines)
