"""Content-addressed result cache for campaign runs.

The key of a job is the SHA-256 over (a) the pretty-printed *lowered*
program — so formatting/comment changes in the surface source do not
invalidate results, but any semantic edit does — and (b) the
verdict-relevant configuration: property, target, transformer knobs
(``max_ts``, alias pruning, ``strategy``/``rounds``/``por``/``cs_tile``),
and backend budget (``backend``, ``max_states``, ``cegar_rounds``).  See
:meth:`~repro.campaign.jobs.CheckJob.verdict_config`.

Results persist as JSONL under ``.kiss-cache/`` (one object per line:
``{"schema": "kiss-cache/3", "key": ..., "result": {...}}``), appended
as jobs finish, so a re-run of the same campaign only checks drivers
whose programs or configurations changed.  Appends go through an
exclusive ``flock`` (:func:`repro.ioutil.locked_append`), so two
campaigns sharing one cache directory can never interleave torn lines.
Unreadable lines are still skipped at load — a truncated write from a
SIGKILLed run degrades to a cache miss, never an error — and counted in
``corrupt_lines``.  So is a line with a missing or different ``schema``
tag (counted in ``stale_lines``): entries written before a
key-affecting format change (the pre-tag layout is retroactively
``kiss-cache/1``) are recomputed, not trusted and not crashed on.  A
*failed* append (disk full, injected ``cache_append`` fault) keeps the
entry in memory for this run and simply leaves it unpersisted.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro import faults, obs
from repro.ioutil import atomic_write_text, locked_append
from repro.lang import is_core_program, lower_program, parse
from repro.lang.pretty import pretty_program

from .jobs import CheckJob, JobResult

CACHE_FILE = "results.jsonl"

#: Entry-format tag.  Bump when the key derivation or the result shape
#: changes incompatibly; loaders skip entries with any other tag.
#: ``/2``: added ``strategy``/``rounds`` to the verdict configuration.
#: ``/3``: added ``por``/``cs_tile`` (lazy strategy, swarm tiling).
SCHEMA = "kiss-cache/3"

#: Degraded-outcome detail prefixes that must never be cached: a re-run
#: with more headroom (longer timeout, higher memory ceiling, no
#: interrupt or cancellation) should try again.
UNCACHED_DETAIL_PREFIXES = (
    "timeout", "crash", "memory", "interrupted", "deadline", "cancelled",
)


class _LRU:
    """A small bounded memo (least-recently-used eviction).  Long fuzz
    campaigns push one generated program per job through the canonical
    form; an unbounded dict grows with the campaign, so cap it."""

    def __init__(self, cap: int):
        self.cap = cap
        self._data: "OrderedDict[str, str]" = OrderedDict()

    def get(self, key: str) -> Optional[str]:
        hit = self._data.get(key)
        if hit is not None:
            self._data.move_to_end(key)
        return hit

    def put(self, key: str, value: str) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.cap:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data


#: Cap on the canonical-form memo.  A corpus driver contributes one job
#: per device-extension field — dozens of jobs sharing one source — so
#: memoizing pays; 256 distinct programs is far beyond any one batch's
#: working set while bounding week-long fuzz campaigns.
CANONICAL_MEMO_CAP = 256

#: source text -> canonical (lowered, pretty-printed) form, per process.
_canonical_memo = _LRU(CANONICAL_MEMO_CAP)


def canonical_program_text(source: str) -> str:
    """The lowered program, pretty-printed — the cache key's view of a
    program."""
    hit = _canonical_memo.get(source)
    if hit is not None:
        return hit
    prog = parse(source)
    if not is_core_program(prog):
        prog = lower_program(prog)
    text = pretty_program(prog)
    _canonical_memo.put(source, text)
    return text


def cache_key(job: CheckJob) -> str:
    """SHA-256 hex digest identifying a job's verdict-relevant content."""
    h = hashlib.sha256()
    try:
        text = canonical_program_text(job.source)
    except Exception:
        # unparsable source: key on the raw text so the job still flows
        # through the scheduler and fails in a worker, not here
        text = "unparsable:" + job.source
    h.update(text.encode("utf-8"))
    h.update(b"\0")
    h.update(json.dumps(job.verdict_config(), sort_keys=True).encode("utf-8"))
    return h.hexdigest()


class ResultCache:
    """JSONL-backed map from cache key to :class:`JobResult`.

    ``ResultCache(None)`` is a disabled cache (always misses, never
    writes) so callers need no conditionals.
    """

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        self.enabled = directory is not None
        self.hits = 0
        self.misses = 0
        #: lines skipped at load because they would not parse (torn
        #: writes) — with flock-guarded appends this stays 0 unless a
        #: writer was SIGKILLed mid-append or a torn-write fault fired.
        self.corrupt_lines = 0
        #: parseable lines skipped for carrying another schema tag.
        self.stale_lines = 0
        #: appends that failed at the OS level (entry kept in memory).
        self.write_errors = 0
        self._entries: Dict[str, dict] = {}
        #: key -> unix timestamp of the entry's append (0.0 for entries
        #: written before timestamps existed — any prune drops them).
        self._times: Dict[str, float] = {}
        if self.enabled:
            os.makedirs(directory, exist_ok=True)
            self._load()

    @property
    def path(self) -> Optional[str]:
        return os.path.join(self.directory, CACHE_FILE) if self.enabled else None

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    if obj.get("schema") != SCHEMA:
                        self.stale_lines += 1
                        continue  # stale format: recompute, don't crash
                    self._entries[obj["key"]] = obj["result"]
                    self._times[obj["key"]] = float(obj.get("t", 0.0))
                except (json.JSONDecodeError, KeyError, TypeError, AttributeError):
                    self.corrupt_lines += 1
                    continue  # torn write from an interrupted run

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[JobResult]:
        """Look up a key, counting the hit/miss."""
        if not self.enabled:
            return None
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        try:
            r = JobResult.from_dict(raw)
        except (KeyError, TypeError):
            self.misses += 1
            self.hits -= 1
            return None
        r.cache_hit = True
        return r

    def put(self, key: str, result: JobResult) -> None:
        if not self.enabled or result.cache_hit:
            return
        # Degraded verdicts from timeouts/crashes/memory ceilings and
        # interrupted remainders are not cached: a re-run with more
        # headroom should try again, and `resource-bound` from an
        # exhausted state budget is already captured by max_states being
        # part of the key.
        if result.detail.startswith(UNCACHED_DETAIL_PREFIXES):
            return
        now = round(time.time(), 3)
        self._entries[key] = result.to_dict()
        self._times[key] = now
        line = json.dumps(
            {"schema": SCHEMA, "key": key, "t": now, "result": result.to_dict()}
        ) + "\n"
        try:
            faults.fire("cache_append")
            locked_append(self.path, faults.corrupt("cache_append", line))
        except OSError:
            # Disk full, permissions, an injected cache_append fault:
            # the entry stays served from memory this run and is simply
            # not persisted — never a campaign error.
            self.write_errors += 1
            obs.inc("cache_write_errors")

    # -- maintenance (``python -m repro cache``) ---------------------------------

    def stats(self) -> dict:
        """Shape of the store for ``cache stats``: entry count, file
        size, verdict tallies, and the load-time health counters."""
        verdicts: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for key, raw in self._entries.items():
            v = raw.get("verdict", "?") if isinstance(raw, dict) else "?"
            verdicts[v] = verdicts.get(v, 0) + 1
            t = self._times.get(key, 0.0)
            if t > 0.0:
                oldest = t if oldest is None else min(oldest, t)
                newest = t if newest is None else max(newest, t)
        size = 0
        if self.enabled and os.path.exists(self.path):
            size = os.path.getsize(self.path)
        return {
            "enabled": self.enabled,
            "path": self.path,
            "entries": len(self._entries),
            "file_bytes": size,
            "verdicts": verdicts,
            "corrupt_lines": self.corrupt_lines,
            "stale_lines": self.stale_lines,
            "oldest_t": oldest,
            "newest_t": newest,
        }

    def prune(self, older_than_s: float, now: Optional[float] = None) -> Tuple[int, int]:
        """Drop entries older than ``older_than_s`` seconds (entries
        predating timestamps count as infinitely old) and compact the
        JSONL file atomically.  Returns ``(kept, dropped)``."""
        if not self.enabled:
            return (0, 0)
        cutoff = (time.time() if now is None else now) - older_than_s
        kept_keys = [k for k in self._entries if self._times.get(k, 0.0) >= cutoff]
        dropped = len(self._entries) - len(kept_keys)
        if dropped:
            self._entries = {k: self._entries[k] for k in kept_keys}
            self._times = {k: self._times[k] for k in kept_keys}
        # Rewrite even when nothing was dropped: pruning doubles as
        # compaction, deduplicating superseded appends and shedding
        # corrupt/stale lines.
        text = "".join(
            json.dumps(
                {"schema": SCHEMA, "key": k, "t": self._times[k], "result": self._entries[k]}
            ) + "\n"
            for k in self._entries
        )
        atomic_write_text(self.path, text)
        self.corrupt_lines = 0
        self.stale_lines = 0
        return (len(self._entries), dropped)
