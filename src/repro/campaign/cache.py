"""Content-addressed result cache for campaign runs.

The key of a job is the SHA-256 over (a) the pretty-printed *lowered*
program — so formatting/comment changes in the surface source do not
invalidate results, but any semantic edit does — and (b) the
verdict-relevant configuration: property, target, transformer knobs
(``max_ts``, alias pruning), and backend budget (``backend``,
``max_states``, ``cegar_rounds``).  See
:meth:`~repro.campaign.jobs.CheckJob.verdict_config`.

Results persist as JSONL under ``.kiss-cache/`` (one object per line:
``{"schema": "kiss-cache/2", "key": ..., "result": {...}}``), appended
as jobs finish, so a re-run of the same campaign only checks drivers
whose programs or configurations changed.  Unreadable lines are skipped
— a truncated write from a crashed run degrades to a cache miss, never
an error.  So does a line with a missing or different ``schema`` tag:
entries written before a key-affecting format change (the pre-tag
layout is retroactively ``kiss-cache/1``) are recomputed, not trusted
and not crashed on.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

from repro.lang import is_core_program, lower_program, parse
from repro.lang.pretty import pretty_program

from .jobs import CheckJob, JobResult

CACHE_FILE = "results.jsonl"

#: Entry-format tag.  Bump when the key derivation or the result shape
#: changes incompatibly; loaders skip entries with any other tag.
#: ``/2``: added ``strategy``/``rounds`` to the verdict configuration.
SCHEMA = "kiss-cache/2"

#: source text -> canonical (lowered, pretty-printed) form.  Lowering is
#: cheap next to checking, but a corpus driver contributes one job per
#: field — dozens of jobs sharing one source — so memoize per process.
_canonical_memo: Dict[str, str] = {}


def canonical_program_text(source: str) -> str:
    """The lowered program, pretty-printed — the cache key's view of a
    program."""
    hit = _canonical_memo.get(source)
    if hit is not None:
        return hit
    prog = parse(source)
    if not is_core_program(prog):
        prog = lower_program(prog)
    text = pretty_program(prog)
    _canonical_memo[source] = text
    return text


def cache_key(job: CheckJob) -> str:
    """SHA-256 hex digest identifying a job's verdict-relevant content."""
    h = hashlib.sha256()
    try:
        text = canonical_program_text(job.source)
    except Exception:
        # unparsable source: key on the raw text so the job still flows
        # through the scheduler and fails in a worker, not here
        text = "unparsable:" + job.source
    h.update(text.encode("utf-8"))
    h.update(b"\0")
    h.update(json.dumps(job.verdict_config(), sort_keys=True).encode("utf-8"))
    return h.hexdigest()


class ResultCache:
    """JSONL-backed map from cache key to :class:`JobResult`.

    ``ResultCache(None)`` is a disabled cache (always misses, never
    writes) so callers need no conditionals.
    """

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        self.enabled = directory is not None
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        if self.enabled:
            os.makedirs(directory, exist_ok=True)
            self._load()

    @property
    def path(self) -> Optional[str]:
        return os.path.join(self.directory, CACHE_FILE) if self.enabled else None

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    if obj.get("schema") != SCHEMA:
                        continue  # stale format: recompute, don't crash
                    self._entries[obj["key"]] = obj["result"]
                except (json.JSONDecodeError, KeyError, TypeError, AttributeError):
                    continue  # torn write from an interrupted run

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[JobResult]:
        """Look up a key, counting the hit/miss."""
        if not self.enabled:
            return None
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        try:
            r = JobResult.from_dict(raw)
        except (KeyError, TypeError):
            self.misses += 1
            self.hits -= 1
            return None
        r.cache_hit = True
        return r

    def put(self, key: str, result: JobResult) -> None:
        if not self.enabled or result.cache_hit:
            return
        # Degraded verdicts from timeouts/crashes are not cached: a
        # re-run with more headroom should try again, and `resource-
        # bound` from an exhausted state budget is already captured by
        # max_states being part of the key.
        if result.detail.startswith(("timeout", "crash")):
            return
        self._entries[key] = result.to_dict()
        with open(self.path, "a") as f:
            f.write(
                json.dumps({"schema": SCHEMA, "key": key, "result": result.to_dict()}) + "\n"
            )
