"""The shared campaign engine: one runtime, three frontends.

:class:`CampaignRuntime` owns everything that actually executes checking
jobs — the content-addressed result cache, the worker-pool lifecycle
(lazy creation, rebuild after ``BrokenProcessPool``), windowed
incremental submission, the bounded retry/degrade state machine, fault
points, and per-job telemetry.  It deliberately owns **no policy about
where jobs come from or when to stop**: those belong to the frontends.

Three frontends drive it:

* :class:`~repro.campaign.scheduler.CampaignScheduler` — the batch
  frontend (``python -m repro campaign``, ``race --all-fields``): feed a
  fixed job list, drain to completion (or to a deadline/signal), return
  results in input order;
* the fuzz runner (:mod:`repro.fuzz.runner`) — a batch of differential
  jobs through the same scheduler;
* the checking service (:mod:`repro.serve`) — a long-lived engine
  thread pumping jobs that arrive over HTTP, forever.

The interaction protocol is pull-based so a frontend always stays in
control between steps (signals, deadlines, and drain requests are
frontend policy):

1. :meth:`lookup` resolves a job against the cache (the global dedupe
   layer) — a hit never reaches the pool;
2. :meth:`submit` queues a miss;
3. :meth:`pump` runs one engine step — (re)fill the bounded in-flight
   window, wait briefly, collect completions, retry or degrade — and
   returns the jobs that finished during the step;
4. :meth:`record` persists a finished job (cache append + ``job_end``
   telemetry);
5. :meth:`drain_pending` degrades the not-yet-submitted backlog when
   the frontend decides to stop early.

``jobs <= 1`` runs in-process (one job per :meth:`pump` call),
preserving rich :class:`~repro.core.checker.KissResult` objects for API
callers; otherwise jobs go through a ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.core.checker import KissResult
from repro.faults import FaultPlan, InjectedFault

from .cache import ResultCache, cache_key
from .jobs import CheckJob, JobResult
from .telemetry import Telemetry

DEFAULT_CACHE_DIR = ".kiss-cache"

#: How long one pool ``wait`` call may block inside :meth:`CampaignRuntime.pump`
#: before control returns to the frontend (signals and drain requests
#: set flags; they must not have to race a long-blocking wait).
POLL_S = 0.25


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


@dataclass
class CampaignConfig:
    """Engine knobs, shared by every frontend.

    ``jobs``: worker processes (<= 1 runs in-process).
    ``timeout``: per-job wall-clock seconds (None = backend budget only).
    ``retries``: extra attempts for a timed-out or crashed job before it
    degrades to ``"resource-bound"``.
    ``cache_dir``: result-cache directory (None disables caching).
    ``telemetry_path``: JSONL event stream destination (None = in-memory
    only).
    ``deadline``: campaign-wide wall-clock budget in seconds; past it
    the remainder degrades to ``"resource-bound"`` (detail
    ``deadline:``).  Batch-frontend policy — the service ignores it.
    ``memory_limit``: per-worker ``RLIMIT_AS`` soft ceiling in MB; an
    over-budget job degrades to ``"resource-bound"`` (detail
    ``memory:``) instead of taking the pool down.
    ``fault_plan``: a :class:`~repro.faults.FaultPlan` for chaos runs
    (None = no injection, zero overhead).
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    telemetry_path: Optional[str] = None
    deadline: Optional[float] = None
    memory_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None


#: One finished job as handed back by :meth:`CampaignRuntime.pump` /
#: :meth:`CampaignRuntime.drain_pending`: ``(job, cache key, result)``.
Finished = Tuple[CheckJob, str, JobResult]


class CampaignRuntime:
    """The engine under every frontend (see module doc).

    Not thread-safe by itself: exactly one thread may call
    :meth:`pump` / :meth:`submit` / :meth:`drain_pending` (the
    scheduler's run loop, or the service's engine thread).  The cache is
    process-shared state guarded by its own ``flock`` at the file layer.
    """

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.cache = ResultCache(self.config.cache_dir)
        #: job_id -> rich KissResult for in-process runs (jobs <= 1).
        self.rich_results: Dict[str, KissResult] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pending: Deque[Tuple[CheckJob, str, int]] = deque()
        self._futures: Dict[object, Tuple[CheckJob, str, int]] = {}

    # -- queue state -------------------------------------------------------------

    @property
    def pooled(self) -> bool:
        return self.config.jobs > 1

    @property
    def backlog(self) -> int:
        """Jobs queued but not yet submitted to a worker."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Jobs currently running in pool workers."""
        return len(self._futures)

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._futures)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._futures

    # -- cache frontage ----------------------------------------------------------

    def lookup(self, job: CheckJob, tel: Telemetry) -> Tuple[str, Optional[JobResult]]:
        """Resolve ``job`` against the content-addressed cache.  Returns
        ``(key, hit)``; a hit is already re-labelled for this job and
        logged as a zero-cost ``job_end`` — it must not be submitted."""
        key = cache_key(job)
        hit = self.cache.get(key)
        if hit is not None:
            hit.job_id = job.job_id  # same content may appear under a new id
            hit.driver = job.driver
            obs.inc("cache_hits")
            self._emit_job_end(tel, job, hit, wall_s=0.0, cache="hit", attempts=0)
        return key, hit

    def record(self, tel: Telemetry, job: CheckJob, key: str, result: JobResult) -> None:
        """Persist one finished job: cache append (degraded outcomes are
        filtered by the cache's own policy) plus the ``job_end`` event."""
        self.cache.put(key, result)
        self._emit_job_end(
            tel, job, result, wall_s=round(result.wall_s, 6),
            cache="miss" if self.cache.enabled else "off",
            attempts=result.attempts,
        )

    # -- submission and the engine step ------------------------------------------

    def submit(self, job: CheckJob, key: Optional[str] = None) -> None:
        """Queue a job (first attempt).  ``key`` avoids re-deriving the
        cache key when :meth:`lookup` already did."""
        self._pending.append((job, key if key is not None else cache_key(job), 1))

    def pump(self, tel: Telemetry, submit: bool = True, poll_s: float = POLL_S) -> List[Finished]:
        """One engine step; returns the jobs that finished during it.

        In-process mode runs the next queued job to a verdict (with its
        whole retry loop — one job per call, so the frontend regains
        control between jobs).  Pool mode tops up the bounded in-flight
        window (unless ``submit`` is False — a draining frontend stops
        feeding the pool but keeps collecting), then waits up to
        ``poll_s`` for completions and applies the retry/degrade policy,
        rebuilding the pool when a worker death breaks it.
        """
        if not self.pooled:
            return self._pump_serial(tel)
        return self._pump_pool(tel, submit, poll_s)

    def drain_pending(self, detail: str) -> List[Finished]:
        """Degrade the never-submitted backlog (stop/deadline/interrupt):
        every queued job becomes a ``resource-bound`` result carrying
        ``detail``, zero attempts, never cached."""
        out: List[Finished] = []
        while self._pending:
            job, key, _ = self._pending.popleft()
            out.append((job, key, self._skipped_result(job, detail)))
        return out

    def close(self) -> None:
        """Tear down the worker pool (queued work stays queued)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignRuntime":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- outcome policy ----------------------------------------------------------

    def _result_from(self, job: CheckJob, outcome: dict, attempts: int) -> JobResult:
        if outcome["detail"].startswith("memory:"):
            obs.inc("memory_ceiling_hits")
        return JobResult(
            job_id=job.job_id,
            driver=job.driver,
            prop=job.prop,
            target=job.target,
            verdict=outcome["verdict"],
            error_kind=outcome.get("error_kind"),
            states=outcome.get("states", 0),
            transitions=outcome.get("transitions", 0),
            checks_emitted=outcome.get("checks_emitted", 0),
            checks_pruned=outcome.get("checks_pruned", 0),
            wall_s=outcome.get("wall_s", 0.0),
            attempts=attempts,
            detail=outcome.get("detail", ""),
            metrics=outcome.get("metrics"),
            witness=outcome.get("witness"),
        )

    def _skipped_result(self, job: CheckJob, detail: str) -> JobResult:
        """A never-ran remainder job: ``resource-bound``, zero attempts,
        never cached (the detail prefix keeps it out of the store)."""
        obs.inc("jobs_interrupted")
        return JobResult(
            job_id=job.job_id, driver=job.driver, prop=job.prop, target=job.target,
            verdict="resource-bound", attempts=0, detail=detail,
        )

    @staticmethod
    def _retryable(outcome: dict) -> bool:
        return outcome["verdict"] == "crash" or outcome["detail"].startswith("timeout")

    @staticmethod
    def _degrade(outcome: dict) -> dict:
        """Retry budget exhausted: graceful degradation to resource-bound."""
        if outcome["verdict"] == "crash":
            out = dict(outcome)
            out["verdict"] = "resource-bound"
            return out
        return outcome

    @staticmethod
    def _crash_outcome(detail: str) -> dict:
        return {"verdict": "crash", "error_kind": None, "wall_s": 0.0, "detail": detail}

    @staticmethod
    def _emit_job_end(tel: Telemetry, job: CheckJob, result: JobResult, *,
                      wall_s: float, cache: str, attempts: int) -> None:
        extra = {"metrics": result.metrics} if result.metrics is not None else {}
        tel.emit("job_end", job=job.job_id, driver=job.driver, verdict=result.verdict,
                 error_kind=result.error_kind, wall_s=wall_s, states=result.states,
                 cache=cache, attempts=attempts, **extra)

    # -- in-process execution (jobs <= 1) ----------------------------------------

    def _pump_serial(self, tel: Telemetry) -> List[Finished]:
        from .worker import execute_job  # deferred: workers pull in the checker stack

        if not self._pending:
            return []
        job, key, _ = self._pending.popleft()
        attempts = 0
        while True:
            attempts += 1
            tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempts)
            outcome, rich = execute_job(
                job, self.config.timeout, attempt=attempts,
                memory_limit=self.config.memory_limit,
            )
            if not self._retryable(outcome) or attempts > self.config.retries:
                break
            tel.emit("job_retry", job=job.job_id, attempt=attempts,
                     reason=outcome["detail"][:200])
        if rich is not None:
            self.rich_results[job.job_id] = rich
        return [(job, key, self._result_from(job, self._degrade(outcome), attempts))]

    # -- pool execution (jobs > 1) -----------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        from .worker import pool_init

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                initializer=pool_init,
                initargs=(self.config.memory_limit, self.config.fault_plan),
            )
        return self._pool

    def _submit_attempt(self, tel: Telemetry, job: CheckJob, attempt: int):
        """Submit one attempt (the ``pool_submit`` fault point lives
        here); returns the future, or None when an injected fault made
        the submission fail — the caller treats that as a crash
        attempt."""
        from .worker import pool_entry

        tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempt)
        try:
            # submission happens on behalf of a job: give job-pinned
            # fault rules a context to match against
            with faults.job_context(job_id=job.job_id, attempt=attempt):
                faults.fire("pool_submit")
            return self._ensure_pool().submit(pool_entry, job, self.config.timeout, attempt)
        except InjectedFault:
            return None

    def _pump_pool(self, tel: Telemetry, submit: bool, poll_s: float) -> List[Finished]:
        finished: List[Finished] = []
        if submit:
            window = self.config.jobs * 2  # bounded in-flight set: stop requests stay cheap
            while self._pending and len(self._futures) < window:
                job, key, attempt = self._pending.popleft()
                fut = self._submit_attempt(tel, job, attempt)
                if fut is None:
                    crash = self._crash_outcome("crash: pool submission failed")
                    if attempt <= self.config.retries:
                        tel.emit("job_retry", job=job.job_id, attempt=attempt,
                                 reason="pool submission failed")
                        self._pending.append((job, key, attempt + 1))
                    else:
                        finished.append(
                            (job, key, self._result_from(job, self._degrade(crash), attempt))
                        )
                    continue
                self._futures[fut] = (job, key, attempt)
        if not self._futures:
            return finished
        done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED, timeout=poll_s)
        for fut in done:
            meta = self._futures.pop(fut, None)
            if meta is None:  # discarded when the pool broke mid-step
                continue
            job, key, attempt = meta
            try:
                outcome = fut.result()
            except BrokenProcessPool:
                # The pool is dead: rebuild it, count the loss as an
                # attempt for every in-flight job.
                lost = [(job, key, attempt)] + list(self._futures.values())
                self._futures.clear()
                self.close()
                for j, k, a in lost:
                    crash = self._crash_outcome("crash: worker process died")
                    if a > self.config.retries:
                        finished.append((j, k, self._result_from(j, self._degrade(crash), a)))
                    else:
                        tel.emit("job_retry", job=j.job_id, attempt=a,
                                 reason="worker process died")
                        self._pending.appendleft((j, k, a + 1))
                break  # the futures set changed wholesale
            except Exception as exc:  # pickling failures etc.
                outcome = self._crash_outcome(f"crash: {exc!r}")
            if self._retryable(outcome) and attempt <= self.config.retries:
                tel.emit("job_retry", job=job.job_id, attempt=attempt,
                         reason=outcome["detail"][:200])
                self._pending.appendleft((job, key, attempt + 1))
                continue
            finished.append((job, key, self._result_from(job, self._degrade(outcome), attempt)))
        return finished
