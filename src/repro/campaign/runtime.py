"""The shared campaign engine: one runtime, three frontends.

:class:`CampaignRuntime` owns everything that actually executes checking
jobs — the content-addressed result cache, the worker-pool lifecycle
(lazy creation, rebuild after ``BrokenProcessPool``), windowed
incremental submission, the bounded retry/degrade state machine, fault
points, per-job telemetry, the write-ahead job journal, cooperative
cancellation, and hedged retries.  It deliberately owns **no policy
about where jobs come from or when to stop**: those belong to the
frontends.

Three frontends drive it:

* :class:`~repro.campaign.scheduler.CampaignScheduler` — the batch
  frontend (``python -m repro campaign``, ``race --all-fields``): feed a
  fixed job list, drain to completion (or to a deadline/signal), return
  results in input order;
* the fuzz runner (:mod:`repro.fuzz.runner`) — a batch of differential
  jobs through the same scheduler;
* the checking service (:mod:`repro.serve`) — a long-lived engine
  thread pumping jobs that arrive over HTTP, forever.

The interaction protocol is pull-based so a frontend always stays in
control between steps (signals, deadlines, and drain requests are
frontend policy):

1. :meth:`lookup` resolves a job against the cache (the global dedupe
   layer) — a hit never reaches the pool;
2. :meth:`submit` queues a miss (and write-ahead journals it when a
   journal is configured);
3. :meth:`pump` runs one engine step — (re)fill the bounded in-flight
   window, hedge stragglers, wait briefly, collect completions, retry
   or degrade — and returns the jobs that finished during the step;
4. :meth:`record` persists a finished job (cache append + ``job_end``
   telemetry + the journal's terminal record);
5. :meth:`drain_pending` degrades the not-yet-submitted backlog when
   the frontend decides to stop early.

**Durability** (``CampaignConfig.journal_path``): every miss is
journaled ``admitted`` before it can run, ``started`` per attempt, and
exactly one terminal record (``done`` / ``cancelled`` / ``abandoned``)
when it settles — see :mod:`repro.campaign.journal`.  :meth:`close`
stamps ``abandoned`` on anything still owed, so even a fatal engine
error leaves no record dangling; a kill -9 leaves ``started`` records
that replay as incomplete.

**Cancellation** (:mod:`repro.cancel`): every dispatched attempt gets a
sentinel-file :class:`~repro.cancel.CancelToken` the worker polls at
backend iteration boundaries.  :meth:`request_cancel` targets one job
(serve ``DELETE /v1/jobs/{id}``); :meth:`cancel_outstanding` sweeps
everything (deadline, swarm first-error).  Cancelled jobs settle with
verdict ``"cancelled"`` — never cached, never retried, counted as
interrupted.

**Hedging** (``CampaignConfig.hedge``): the runtime keeps a bounded
per-driver latency sample; when a primary attempt outlives the
configured quantile of its driver's history, one duplicate is launched.
First finisher wins and the twin is cancelled via its token; the settled
bookkeeping guarantees a single recorded result and a single cache
entry per job no matter which copy wins.

``jobs <= 1`` runs in-process (one job per :meth:`pump` call),
preserving rich :class:`~repro.core.checker.KissResult` objects for API
callers; otherwise jobs go through a ``ProcessPoolExecutor``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.cancel import CancelToken
from repro.core.checker import KissResult
from repro.faults import FaultPlan, InjectedFault

from .cache import ResultCache, cache_key
from .jobs import CheckJob, JobResult
from .journal import JobJournal
from .telemetry import Telemetry

DEFAULT_CACHE_DIR = ".kiss-cache"

#: How long one pool ``wait`` call may block inside :meth:`CampaignRuntime.pump`
#: before control returns to the frontend (signals and drain requests
#: set flags; they must not have to race a long-blocking wait).
POLL_S = 0.25

#: Hedging needs this many completed samples for a driver before its
#: latency quantile means anything.
HEDGE_MIN_SAMPLES = 5

#: Never hedge before a job has run at least this long — sub-50ms jobs
#: finish before the duplicate could even start.
HEDGE_MIN_CUTOFF_S = 0.05

#: Bound on the per-driver latency sample (newest wins).
HEDGE_SAMPLE_CAP = 64


def default_jobs() -> int:
    """Default worker count: one per CPU."""
    return os.cpu_count() or 1


@dataclass
class CampaignConfig:
    """Engine knobs, shared by every frontend.

    ``jobs``: worker processes (<= 1 runs in-process).
    ``timeout``: per-job wall-clock seconds (None = backend budget only).
    ``retries``: extra attempts for a timed-out or crashed job before it
    degrades to ``"resource-bound"``.
    ``cache_dir``: result-cache directory (None disables caching).
    ``telemetry_path``: JSONL event stream destination (None = in-memory
    only).
    ``deadline``: campaign-wide wall-clock budget in seconds; past it
    in-flight jobs are cancelled and the remainder degrades to
    ``"resource-bound"`` (detail ``deadline:``).  Batch-frontend policy
    — the service ignores it.
    ``memory_limit``: per-worker ``RLIMIT_AS`` soft ceiling in MB; an
    over-budget job degrades to ``"resource-bound"`` (detail
    ``memory:``) instead of taking the pool down.
    ``fault_plan``: a :class:`~repro.faults.FaultPlan` for chaos runs
    (None = no injection, zero overhead).
    ``journal_path``: write-ahead job journal destination (None
    disables durability — see :mod:`repro.campaign.journal`).
    ``hedge``: latency quantile in (0, 1) past which a straggler gets
    one duplicate attempt (None disables hedging; pool mode only).
    """

    jobs: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    cache_dir: Optional[str] = None
    telemetry_path: Optional[str] = None
    deadline: Optional[float] = None
    memory_limit: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    journal_path: Optional[str] = None
    hedge: Optional[float] = None


#: One finished job as handed back by :meth:`CampaignRuntime.pump` /
#: :meth:`CampaignRuntime.drain_pending`: ``(job, cache key, result)``.
Finished = Tuple[CheckJob, str, JobResult]


@dataclass
class _Flight:
    """One dispatched pool attempt (primary or hedge duplicate)."""

    job: CheckJob
    key: str
    attempt: int
    token: CancelToken
    started: float
    hedge: bool = False


class CampaignRuntime:
    """The engine under every frontend (see module doc).

    Not thread-safe by itself: exactly one thread may call
    :meth:`pump` / :meth:`submit` / :meth:`drain_pending` (the
    scheduler's run loop, or the service's engine thread).  The one
    cross-thread exception is :meth:`request_cancel`, which only
    performs GIL-atomic flag writes and sentinel-file touches — serve's
    HTTP threads call it while the engine thread pumps.  The cache is
    process-shared state guarded by its own ``flock`` at the file layer.
    """

    def __init__(self, config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.cache = ResultCache(self.config.cache_dir)
        self.journal = JobJournal(self.config.journal_path)
        #: which frontend admitted the jobs (journal provenance).
        self.origin = "campaign"
        #: job_id -> rich KissResult for in-process runs (jobs <= 1).
        self.rich_results: Dict[str, KissResult] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pending: Deque[Tuple[CheckJob, str, int]] = deque()
        self._futures: Dict[object, _Flight] = {}
        #: job_id -> live futures for that job (1 normally, 2 hedged).
        self._job_futs: Dict[str, List[object]] = {}
        #: job_id -> live cancel tokens (cross-thread read-only).
        self._tokens: Dict[str, List[CancelToken]] = {}
        #: job_id -> reason, for jobs cancelled before their next dispatch.
        self._cancel_asap: Dict[str, str] = {}
        #: job_id -> in-flight copies still to drain after the job settled
        #: (hedge losers, late duplicate completions) — their outcomes
        #: are discarded so exactly one result is ever recorded.
        self._settled: Dict[str, int] = {}
        #: driver -> recent wall_s samples for the hedge quantile.
        self._latency: Dict[str, Deque[float]] = {}
        self._cancel_dir: Optional[str] = None
        self._token_seq = 0

    # -- queue state -------------------------------------------------------------

    @property
    def pooled(self) -> bool:
        return self.config.jobs > 1

    @property
    def backlog(self) -> int:
        """Jobs queued but not yet submitted to a worker."""
        return len(self._pending)

    @property
    def inflight(self) -> int:
        """Attempt copies currently running in pool workers."""
        return len(self._futures)

    @property
    def outstanding(self) -> int:
        return len(self._pending) + len(self._futures)

    @property
    def idle(self) -> bool:
        return not self._pending and not self._futures

    # -- cache frontage ----------------------------------------------------------

    def lookup(self, job: CheckJob, tel: Telemetry) -> Tuple[str, Optional[JobResult]]:
        """Resolve ``job`` against the content-addressed cache.  Returns
        ``(key, hit)``; a hit is already re-labelled for this job and
        logged as a zero-cost ``job_end`` — it must not be submitted.

        A hit for a job the journal still carries as open (a resumed
        run answering recovered work from the cache) writes the ``done``
        terminal record, so a second resume finds nothing owed."""
        key = cache_key(job)
        hit = self.cache.get(key)
        if hit is not None:
            hit.job_id = job.job_id  # same content may appear under a new id
            hit.driver = job.driver
            obs.inc("cache_hits")
            self.journal.done(job.job_id, hit.verdict)
            self._emit_job_end(tel, job, hit, wall_s=0.0, cache="hit", attempts=0)
        return key, hit

    def record(self, tel: Telemetry, job: CheckJob, key: str, result: JobResult) -> None:
        """Persist one finished job: cache append (degraded outcomes are
        filtered by the cache's own policy), the journal's terminal
        record, plus the ``job_end`` event."""
        self.cache.put(key, result)
        if result.verdict == "cancelled":
            self.journal.cancelled(job.job_id, reason=result.detail[:200])
        elif result.detail.startswith(("interrupted", "deadline")):
            # a drained remainder never ran: the journal owes it to the
            # next resume, not to the cache
            self.journal.abandoned(job.job_id, reason=result.detail[:200])
        else:
            self.journal.done(job.job_id, result.verdict)
        self._emit_job_end(
            tel, job, result, wall_s=round(result.wall_s, 6),
            cache="miss" if self.cache.enabled else "off",
            attempts=result.attempts,
        )

    # -- submission and the engine step ------------------------------------------

    def submit(self, job: CheckJob, key: Optional[str] = None,
               tenant: Optional[str] = None) -> None:
        """Queue a job (first attempt).  ``key`` avoids re-deriving the
        cache key when :meth:`lookup` already did.  The write-ahead
        ``admitted`` record (with ``tenant``/origin provenance) lands
        here, before the job can possibly run."""
        key = key if key is not None else cache_key(job)
        self.journal.admit(job, key, tenant=tenant, origin=self.origin)
        self._pending.append((job, key, 1))

    def pump(self, tel: Telemetry, submit: bool = True, poll_s: float = POLL_S) -> List[Finished]:
        """One engine step; returns the jobs that finished during it.

        In-process mode runs the next queued job to a verdict (with its
        whole retry loop — one job per call, so the frontend regains
        control between jobs).  Pool mode tops up the bounded in-flight
        window (unless ``submit`` is False — a draining frontend stops
        feeding the pool but keeps collecting), hedges stragglers, then
        waits up to ``poll_s`` for completions and applies the
        retry/degrade policy, rebuilding the pool when a worker death
        breaks it.
        """
        if not self.pooled:
            return self._pump_serial(tel)
        return self._pump_pool(tel, submit, poll_s)

    def drain_pending(self, detail: str) -> List[Finished]:
        """Degrade the never-submitted backlog (stop/deadline/interrupt):
        every queued job becomes a ``resource-bound`` result carrying
        ``detail``, zero attempts, never cached."""
        out: List[Finished] = []
        while self._pending:
            job, key, _ = self._pending.popleft()
            out.append((job, key, self._skipped_result(job, detail)))
        return out

    # -- cancellation ------------------------------------------------------------

    def request_cancel(self, job_id: str, reason: str = "") -> bool:
        """Cancel one job cooperatively: flag it for the next dispatch
        and touch every live token so an in-flight attempt notices at
        its next backend poll.  Safe to call from another thread (serve
        HTTP handlers) — only GIL-atomic writes and sentinel-file
        touches happen here.  Returns True when the job was pending or
        in flight."""
        tokens = list(self._tokens.get(job_id, ()))
        queued = any(j.job_id == job_id for j, _, _ in list(self._pending))
        if not tokens and not queued:
            return False
        self._cancel_asap[job_id] = reason
        for tok in tokens:
            tok.cancel(reason)
        return True

    def cancel_outstanding(self, reason: str = "",
                           include_pending: bool = True) -> List[Finished]:
        """Cancel everything the runtime still owes: touch every
        in-flight token, and (by default) convert the pending backlog
        into immediate ``cancelled`` results.  Returns those synthesized
        results; in-flight jobs surface as ``cancelled`` through the
        following :meth:`pump` calls."""
        out: List[Finished] = []
        if include_pending:
            while self._pending:
                job, key, attempt = self._pending.popleft()
                out.append((job, key, self._cancelled_result(
                    job, reason, attempts=max(0, attempt - 1))))
        for job_id, tokens in list(self._tokens.items()):
            self._cancel_asap[job_id] = reason
            for tok in list(tokens):
                tok.cancel(reason)
        return out

    def _new_token(self, job_id: str) -> CancelToken:
        if self._cancel_dir is None:
            self._cancel_dir = tempfile.mkdtemp(prefix="kiss-cancel-")
        self._token_seq += 1
        token = CancelToken(os.path.join(self._cancel_dir, f"{self._token_seq}.cancel"))
        self._tokens.setdefault(job_id, []).append(token)
        return token

    def _drop_token(self, job_id: str, token: CancelToken) -> None:
        tokens = self._tokens.get(job_id)
        if tokens is not None:
            try:
                tokens.remove(token)
            except ValueError:
                pass
            if not tokens:
                self._tokens.pop(job_id, None)
        token.clear()

    # -- shutdown ----------------------------------------------------------------

    def close(self) -> None:
        """Tear down the engine.  Anything still owed — in-flight
        attempts, the queued backlog — gets an ``abandoned`` terminal
        record first, so even a fatal-error exit leaves no journal entry
        dangling as ``started`` (a later ``--resume`` re-enqueues
        exactly these jobs)."""
        if self.journal.enabled:
            seen = set()
            for flight in list(self._futures.values()):
                if flight.job.job_id not in seen:
                    seen.add(flight.job.job_id)
                    self.journal.abandoned(flight.job.job_id, reason="shutdown")
            for job, _, _ in list(self._pending):
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    self.journal.abandoned(job.job_id, reason="shutdown")
        self._teardown_pool()
        if self._cancel_dir is not None:
            shutil.rmtree(self._cancel_dir, ignore_errors=True)
            self._cancel_dir = None

    def _teardown_pool(self) -> None:
        """Drop the worker pool only (queued work stays queued, journal
        untouched) — the ``BrokenProcessPool`` rebuild path."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignRuntime":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- outcome policy ----------------------------------------------------------

    def _result_from(self, job: CheckJob, outcome: dict, attempts: int) -> JobResult:
        if outcome["detail"].startswith("memory:"):
            obs.inc("memory_ceiling_hits")
        return JobResult(
            job_id=job.job_id,
            driver=job.driver,
            prop=job.prop,
            target=job.target,
            verdict=outcome["verdict"],
            error_kind=outcome.get("error_kind"),
            states=outcome.get("states", 0),
            transitions=outcome.get("transitions", 0),
            checks_emitted=outcome.get("checks_emitted", 0),
            checks_pruned=outcome.get("checks_pruned", 0),
            wall_s=outcome.get("wall_s", 0.0),
            attempts=attempts,
            detail=outcome.get("detail", ""),
            metrics=outcome.get("metrics"),
            witness=outcome.get("witness"),
        )

    def _skipped_result(self, job: CheckJob, detail: str) -> JobResult:
        """A never-ran remainder job: ``resource-bound``, zero attempts,
        never cached (the detail prefix keeps it out of the store)."""
        obs.inc("jobs_interrupted")
        return JobResult(
            job_id=job.job_id, driver=job.driver, prop=job.prop, target=job.target,
            verdict="resource-bound", attempts=0, detail=detail,
        )

    def _cancelled_result(self, job: CheckJob, reason: str,
                          attempts: int = 0) -> JobResult:
        """A cooperatively cancelled job: verdict ``cancelled``, detail
        prefix ``cancelled`` (never cached), counted as interrupted."""
        obs.inc("jobs_cancelled")
        detail = f"cancelled: {reason}" if reason else "cancelled"
        return JobResult(
            job_id=job.job_id, driver=job.driver, prop=job.prop, target=job.target,
            verdict="cancelled", attempts=attempts, detail=detail,
        )

    @staticmethod
    def _retryable(outcome: dict) -> bool:
        return outcome["verdict"] == "crash" or outcome["detail"].startswith("timeout")

    @staticmethod
    def _degrade(outcome: dict) -> dict:
        """Retry budget exhausted: graceful degradation to resource-bound."""
        if outcome["verdict"] == "crash":
            out = dict(outcome)
            out["verdict"] = "resource-bound"
            return out
        return outcome

    @staticmethod
    def _crash_outcome(detail: str) -> dict:
        return {"verdict": "crash", "error_kind": None, "wall_s": 0.0, "detail": detail}

    @staticmethod
    def _emit_job_end(tel: Telemetry, job: CheckJob, result: JobResult, *,
                      wall_s: float, cache: str, attempts: int) -> None:
        extra = {"metrics": result.metrics} if result.metrics is not None else {}
        tel.emit("job_end", job=job.job_id, driver=job.driver, verdict=result.verdict,
                 error_kind=result.error_kind, wall_s=wall_s, states=result.states,
                 cache=cache, attempts=attempts, **extra)

    # -- hedging -----------------------------------------------------------------

    def _note_latency(self, driver: str, result: JobResult) -> None:
        if result.attempts < 1 or result.verdict == "cancelled":
            return
        samples = self._latency.get(driver)
        if samples is None:
            samples = self._latency[driver] = deque(maxlen=HEDGE_SAMPLE_CAP)
        samples.append(result.wall_s)

    def _hedge_cutoff(self, driver: str) -> Optional[float]:
        """The straggler threshold for ``driver``: the configured
        quantile of its recent completion latencies, or None while the
        sample is too thin to trust."""
        quantile = self.config.hedge
        samples = self._latency.get(driver)
        if quantile is None or samples is None or len(samples) < HEDGE_MIN_SAMPLES:
            return None
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, int(quantile * len(ordered)))
        return max(ordered[idx], HEDGE_MIN_CUTOFF_S)

    def _maybe_hedge(self, tel: Telemetry) -> None:
        """Launch at most one duplicate per straggling primary attempt
        (window capacity permitting).  The duplicate reuses the same
        attempt number — it is the same logical attempt racing two
        workers, not a retry."""
        if self.config.hedge is None:
            return
        from .worker import pool_entry

        window = self.config.jobs * 2
        now = time.monotonic()
        for fut, flight in list(self._futures.items()):
            if len(self._futures) >= window:
                break
            job_id = flight.job.job_id
            if flight.hedge or job_id in self._settled:
                continue
            if len(self._job_futs.get(job_id, ())) != 1:
                continue  # already hedged
            cutoff = self._hedge_cutoff(flight.job.driver)
            if cutoff is None or (now - flight.started) < cutoff:
                continue
            token = self._new_token(job_id)
            try:
                hfut = self._ensure_pool().submit(
                    pool_entry, flight.job, self.config.timeout,
                    flight.attempt, token.path,
                )
            except Exception:
                self._drop_token(job_id, token)
                continue
            self._futures[hfut] = _Flight(
                job=flight.job, key=flight.key, attempt=flight.attempt,
                token=token, started=now, hedge=True,
            )
            self._job_futs.setdefault(job_id, []).append(hfut)
            obs.inc("jobs_hedged")
            tel.emit("job_hedge", job=job_id, driver=flight.job.driver,
                     elapsed_s=round(now - flight.started, 3),
                     cutoff_s=round(cutoff, 3))

    # -- in-process execution (jobs <= 1) ----------------------------------------

    def _pump_serial(self, tel: Telemetry) -> List[Finished]:
        from .worker import execute_job  # deferred: workers pull in the checker stack

        if not self._pending:
            return []
        job, key, _ = self._pending.popleft()
        reason = self._cancel_asap.pop(job.job_id, None)
        if reason is not None:
            return [(job, key, self._cancelled_result(job, reason))]
        token = self._new_token(job.job_id)
        attempts = 0
        try:
            while True:
                attempts += 1
                tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempts)
                self.journal.started(job.job_id, attempts)
                outcome, rich = execute_job(
                    job, self.config.timeout, attempt=attempts,
                    memory_limit=self.config.memory_limit,
                    cancel_path=token.path,
                )
                if outcome["verdict"] == "cancelled":
                    break
                if not self._retryable(outcome) or attempts > self.config.retries:
                    break
                tel.emit("job_retry", job=job.job_id, attempt=attempts,
                         reason=outcome["detail"][:200])
        finally:
            self._drop_token(job.job_id, token)
            self._cancel_asap.pop(job.job_id, None)
        if rich is not None:
            self.rich_results[job.job_id] = rich
        result = self._result_from(job, self._degrade(outcome), attempts)
        self._note_latency(job.driver, result)
        return [(job, key, result)]

    # -- pool execution (jobs > 1) -----------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        from .worker import pool_init

        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                initializer=pool_init,
                initargs=(self.config.memory_limit, self.config.fault_plan),
            )
        return self._pool

    def _submit_attempt(self, tel: Telemetry, job: CheckJob, attempt: int,
                        cancel_path: Optional[str] = None):
        """Submit one attempt (the ``pool_submit`` fault point lives
        here); returns the future, or None when an injected fault made
        the submission fail — the caller treats that as a crash
        attempt."""
        from .worker import pool_entry

        tel.emit("job_start", job=job.job_id, driver=job.driver, attempt=attempt)
        self.journal.started(job.job_id, attempt)
        try:
            # submission happens on behalf of a job: give job-pinned
            # fault rules a context to match against
            with faults.job_context(job_id=job.job_id, attempt=attempt):
                faults.fire("pool_submit")
            return self._ensure_pool().submit(
                pool_entry, job, self.config.timeout, attempt, cancel_path)
        except InjectedFault:
            return None

    def _unregister(self, fut, flight: _Flight) -> None:
        futs = self._job_futs.get(flight.job.job_id)
        if futs is not None:
            try:
                futs.remove(fut)
            except ValueError:
                pass
            if not futs:
                self._job_futs.pop(flight.job.job_id, None)
        self._drop_token(flight.job.job_id, flight.token)

    def _settle_twins(self, tel: Telemetry, job_id: str) -> None:
        """The job just settled with copies still in flight (a hedge
        twin, or a doubly-cancelled pair): cancel them and arrange for
        their eventual outcomes to be discarded."""
        twins = self._job_futs.get(job_id, [])
        if not twins:
            return
        self._settled[job_id] = len(twins)
        for tfut in list(twins):
            tflight = self._futures.get(tfut)
            if tflight is not None:
                tflight.token.cancel("hedge-loser")
            tfut.cancel()
            tel.emit("job_cancelled", job=job_id, reason="hedge-loser")

    def _pump_pool(self, tel: Telemetry, submit: bool, poll_s: float) -> List[Finished]:
        finished: List[Finished] = []
        if submit:
            window = self.config.jobs * 2  # bounded in-flight set: stop requests stay cheap
            while self._pending and len(self._futures) < window:
                job, key, attempt = self._pending.popleft()
                reason = self._cancel_asap.pop(job.job_id, None)
                if reason is not None:
                    finished.append((job, key, self._cancelled_result(
                        job, reason, attempts=max(0, attempt - 1))))
                    continue
                token = self._new_token(job.job_id)
                fut = self._submit_attempt(tel, job, attempt, token.path)
                if fut is None:
                    self._drop_token(job.job_id, token)
                    crash = self._crash_outcome("crash: pool submission failed")
                    if attempt <= self.config.retries:
                        tel.emit("job_retry", job=job.job_id, attempt=attempt,
                                 reason="pool submission failed")
                        self._pending.append((job, key, attempt + 1))
                    else:
                        finished.append(
                            (job, key, self._result_from(job, self._degrade(crash), attempt))
                        )
                    continue
                self._futures[fut] = _Flight(job=job, key=key, attempt=attempt,
                                             token=token, started=time.monotonic())
                self._job_futs.setdefault(job.job_id, []).append(fut)
            self._maybe_hedge(tel)
        if not self._futures:
            return finished
        done, _ = wait(list(self._futures), return_when=FIRST_COMPLETED, timeout=poll_s)
        for fut in done:
            flight = self._futures.pop(fut, None)
            if flight is None:  # discarded when the pool broke mid-step
                continue
            job, key, attempt = flight.job, flight.key, flight.attempt
            self._unregister(fut, flight)
            try:
                outcome = fut.result()
            except BrokenProcessPool:
                # The pool is dead: rebuild it, count the loss as an
                # attempt for every in-flight job (hedged twins requeue
                # once, settled jobs owe nothing).
                lost = [flight] + list(self._futures.values())
                self._futures.clear()
                self._job_futs.clear()
                for f in lost:
                    self._drop_token(f.job.job_id, f.token)
                self._teardown_pool()
                unique: Dict[str, _Flight] = {}
                for f in lost:
                    if f.job.job_id in self._settled:
                        self._settled.pop(f.job.job_id, None)
                        continue
                    unique.setdefault(f.job.job_id, f)
                for f in unique.values():
                    crash = self._crash_outcome("crash: worker process died")
                    if f.attempt > self.config.retries:
                        finished.append(
                            (f.job, f.key, self._result_from(f.job, self._degrade(crash), f.attempt)))
                    else:
                        tel.emit("job_retry", job=f.job.job_id, attempt=f.attempt,
                                 reason="worker process died")
                        self._pending.appendleft((f.job, f.key, f.attempt + 1))
                break  # the futures set changed wholesale
            except CancelledError:
                # fut.cancel() won before the copy ever started
                outcome = {"verdict": "cancelled", "error_kind": None,
                           "wall_s": 0.0, "detail": "cancelled: hedge-loser"}
            except Exception as exc:  # pickling failures etc.
                outcome = self._crash_outcome(f"crash: {exc!r}")
            job_id = job.job_id
            if job_id in self._settled:
                # late copy of an already-settled job: outcome discarded
                left = self._settled[job_id] - 1
                if left <= 0:
                    self._settled.pop(job_id, None)
                else:
                    self._settled[job_id] = left
                continue
            if outcome["verdict"] == "cancelled":
                self._cancel_asap.pop(job_id, None)
                finished.append((job, key, self._result_from(job, outcome, attempt)))
                self._settle_twins(tel, job_id)
                continue
            if self._retryable(outcome) and attempt <= self.config.retries:
                if self._job_futs.get(job_id):
                    # the hedge twin is still racing: it *is* the retry
                    continue
                tel.emit("job_retry", job=job.job_id, attempt=attempt,
                         reason=outcome["detail"][:200])
                self._pending.appendleft((job, key, attempt + 1))
                continue
            self._cancel_asap.pop(job_id, None)
            result = self._result_from(job, self._degrade(outcome), attempt)
            self._note_latency(job.driver, result)
            finished.append((job, key, result))
            self._settle_twins(tel, job_id)
        return finished
