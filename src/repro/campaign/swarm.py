"""Swarm-tiled lazy campaigns: one program, N schedule tiles.

The lazy sequentialization (:mod:`repro.lazy`) makes the schedule space
explicit: every candidate context-switch point is a ``"t:pc"`` name, and
``Kiss(strategy="lazy", cs_tile=[...])`` checks exactly the executions
whose constrained segment ends stay inside the tile.  A *swarm* run
exploits that: expand one program into N ordinary assertion
:class:`~repro.campaign.jobs.CheckJob`\\ s, each enabling a subset of the
switch points, and let the existing campaign engine do the rest —
parallel workers, the content-addressed cache (each tile keys on its own
``cs_tile``), per-job timeouts, fault injection, graceful interrupts.

**Tiling.**  The candidate points are shuffled with a seeded RNG and
dealt round-robin into N *classes*; tile *i* enables everything
**except** class *i* (``plan_tiles``).  The same ``(source, tiles,
rounds, seed)`` always yields the same tiles, so an interrupted swarm
re-run resumes from the cache.

**Coverage.**  A K-round lazy execution over T thread instances ends at
most ``(K-1) * T`` segments at a *constrained* switch point (final-round
segments and blocked instances are never constrained).  Each used point
lives in exactly one class, so whenever ``N > (K-1) * T`` the execution
misses at least one class entirely — and the tile complementing that
class admits it.  Under that bound the tile union covers exactly the
monolithic lazy schedule set (``TilePlan.exhaustive``); with fewer tiles
the union still covers every schedule that avoids some class, but a
``"safe"`` verdict only certifies the tiled schedule set.

**Aggregation** (:func:`aggregate`): any tile error is definitive — the
witnessing tile's program is re-checked in process with trace mapping
and concurrent replay on, so the swarm error comes with the same
replay-validated trace a monolithic run would produce.  All tiles safe
is *safe at the tiling bound* (and at the round bound K, like any lazy
verdict).  Otherwise the swarm is ``"resource-bound"`` — a cancelled
tile counts as inconclusive exactly like a resource-bound one (tiles
only restrict schedules, so skipping one never invents an error).

**First-error cancellation** (``run_swarm_campaign(first_error=True)``,
CLI ``--first-error``): the moment any tile reports an error, the
remaining sibling tiles are cooperatively cancelled through the
runtime (:meth:`~repro.campaign.scheduler.CampaignScheduler.request_cancel`)
— the error is already definitive, so their wall time is pure waste.
The aggregate still re-checks the witnessing tile and replay-validates
the trace; cancelled siblings appear as ``cancelled`` results (and
``cancelled`` journal/telemetry records) in the report.  Off by
default: an exhaustive swarm's ``safe`` verdict needs every tile.

CLI: ``python -m repro campaign --swarm FILE.kp --tiles 8``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.lang import parse
from repro.lang.lower import is_core_program, lower_program
from repro.lazy import LazyTransformer

from .jobs import CheckJob, JobResult
from .runtime import CampaignConfig
from .scheduler import CampaignScheduler


@dataclass(frozen=True)
class TilePlan:
    """A deterministic tiling of one program's switch-point space."""

    rounds: int
    seed: int
    #: every candidate ``"t:pc"`` switch point of the lazy encoding.
    cs_points: List[str]
    #: static thread instances in the encoding (T in the coverage bound).
    instances: int
    #: one enabled-point list per tile, each sorted.
    tiles: List[List[str]]
    #: True when the union of tiles equals the monolithic lazy schedule
    #: set: either ``len(tiles) > (rounds - 1) * instances`` (pigeonhole)
    #: or a monolithic catch-all tile is present.
    exhaustive: bool


def plan_tiles(
    source: str, tiles: int = 8, rounds: int = 3, seed: int = 0
) -> TilePlan:
    """Enumerate the program's switch points and deal them into tiles.

    Runs the lazy transform once (discarding the output program) to get
    the candidate point list, shuffles it with ``random.Random(seed)``,
    deals round-robin into ``tiles`` classes, and complements: tile *i*
    enables every point outside class *i*.  ``tiles <= 1`` degenerates
    to one monolithic tile with every point enabled.

    When the point space is too small to reach the pigeonhole bound
    (fewer points than ``(rounds - 1) * instances`` classes can be cut)
    but the requested tile budget still has room, a monolithic
    catch-all tile is appended, so small programs get an exhaustive
    swarm instead of a silently weaker one.
    """
    prog = parse(source)
    if not is_core_program(prog):
        prog = lower_program(prog)
    lt = LazyTransformer(rounds=rounds)
    lt.transform(prog)
    points = list(lt.cs_points)
    n_instances = len(lt.instances)
    full = sorted(points)
    if tiles <= 1 or len(points) < 2:
        plan_tiles_list = [full]
    else:
        n = min(tiles, len(points))
        shuffled = points[:]
        random.Random(seed).shuffle(shuffled)
        classes = [shuffled[i::n] for i in range(n)]
        plan_tiles_list = [sorted(set(points) - set(c)) for c in classes]
        if n <= (rounds - 1) * n_instances and len(plan_tiles_list) < tiles:
            plan_tiles_list.append(full)
    return TilePlan(
        rounds=rounds,
        seed=seed,
        cs_points=full,
        instances=n_instances,
        tiles=plan_tiles_list,
        exhaustive=(
            len(plan_tiles_list) > (rounds - 1) * n_instances
            or full in plan_tiles_list
        ),
    )


def swarm_jobs(
    source: str,
    plan: TilePlan,
    max_states: int = 300_000,
    por: bool = False,
    name: str = "swarm",
) -> List[CheckJob]:
    """One ordinary assertion job per tile.  Each job's ``cs_tile`` is
    part of its cache key, so tiles hit and miss independently."""
    return [
        CheckJob(
            job_id=f"{name}/tile{i:02d}",
            driver=name,
            source=source,
            prop="assertion",
            config={
                "strategy": "lazy",
                "rounds": plan.rounds,
                "por": por,
                "cs_tile": tile,
                "max_states": max_states,
            },
        )
        for i, tile in enumerate(plan.tiles)
    ]


@dataclass
class SwarmReport:
    """The aggregated outcome of one swarm run."""

    verdict: str  # "error" | "safe" | "resource-bound"
    plan: TilePlan
    results: List[JobResult] = field(default_factory=list)
    #: index of the winning tile on an error verdict.
    witness_tile: Optional[int] = None
    #: formatted concurrent trace from the witnessing tile's in-process
    #: re-run (None when the re-run could not reproduce it).
    trace: Optional[str] = None
    #: replay verdict for that trace (the concheck.replay cross-check).
    trace_validated: Optional[bool] = None
    interrupted: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.verdict == "error"

    def summary(self) -> str:
        n = len(self.plan.tiles)
        scope = "exhaustive at K" if self.plan.exhaustive else "tiled subset"
        head = (
            f"swarm: {n} tiles over {len(self.plan.cs_points)} switch points "
            f"(K={self.plan.rounds}, seed {self.plan.seed}, {scope})"
        )
        counts = {}
        for r in self.results:
            counts[r.verdict] = counts.get(r.verdict, 0) + 1
        tally = ", ".join(f"{v}: {counts[v]}" for v in sorted(counts))
        lines = [head, f"tiles: {tally}"]
        if self.verdict == "error":
            lines.append(
                f"verdict: error (witness tile {self.witness_tile}, trace "
                f"{'replay-validated' if self.trace_validated else 'not validated'})"
            )
            if self.trace:
                lines.append(self.trace)
        elif self.verdict == "safe":
            bound = "schedule-exhaustive" if self.plan.exhaustive else "tiling-bounded"
            lines.append(f"verdict: safe at the {bound} K={self.plan.rounds} bound")
        else:
            lines.append("verdict: resource-bound (some tile inconclusive, none erred)")
        return "\n".join(lines)


def aggregate(
    source: str,
    plan: TilePlan,
    results: Sequence[JobResult],
    max_states: int = 300_000,
    por: bool = False,
    validate: bool = True,
) -> SwarmReport:
    """Fold tile results into one swarm verdict.

    Any tile error wins (an error inside a tile is an error of the full
    schedule set — tiles only *restrict* schedules, never invent them);
    the lowest-indexed erring tile is re-checked in process with trace
    mapping and replay on, so the report carries a concrete validated
    interleaving.  All safe ⇒ safe at the tiling bound; any leftover
    ``resource-bound`` or ``cancelled`` tile makes the swarm
    inconclusive (a first-error run's cancelled siblings never dilute
    the error verdict — the error branch wins first).
    """
    report = SwarmReport(verdict="safe", plan=plan, results=list(results))
    erring = [i for i, r in enumerate(results) if r.verdict == "error"]
    if erring:
        report.verdict = "error"
        report.witness_tile = erring[0]
        if validate:
            _witness_rerun(source, plan, report, max_states, por)
        return report
    if any(r.verdict in ("resource-bound", "cancelled") for r in results):
        report.verdict = "resource-bound"
    return report


def _witness_rerun(
    source: str, plan: TilePlan, report: SwarmReport, max_states: int, por: bool
) -> None:
    """Re-check the witnessing tile in process (worker results are slim
    dicts — traces never cross the pool boundary) with mapping and
    concurrent replay enabled."""
    from repro.core.checker import Kiss  # deferred: avoid import cycle

    kiss = Kiss(
        max_states=max_states,
        strategy="lazy",
        rounds=plan.rounds,
        por=por,
        cs_tile=plan.tiles[report.witness_tile],
        validate_traces=True,
    )
    r = kiss.check_assertions(parse(source))
    if r.is_error and r.concurrent_trace is not None:
        report.trace = r.concurrent_trace.format()
        report.trace_validated = r.trace_validated


def run_swarm_campaign(
    source: str,
    tiles: int = 8,
    rounds: int = 3,
    seed: int = 0,
    por: bool = False,
    max_states: int = 300_000,
    campaign_config: Optional[CampaignConfig] = None,
    name: str = "swarm",
    first_error: bool = False,
) -> SwarmReport:
    """Plan, run, and aggregate one swarm campaign.  The scheduler is the
    ordinary batch frontend, so caching, timeouts, chaos injection, and
    graceful SIGINT draining all behave exactly as in a corpus run — an
    interrupted swarm resumes from the cache on the next invocation.

    ``first_error=True`` cancels the sibling tiles through the runtime
    the moment any tile errs (the error is definitive; see module doc).
    """
    plan = plan_tiles(source, tiles=tiles, rounds=rounds, seed=seed)
    jobs = swarm_jobs(source, plan, max_states=max_states, por=por, name=name)
    scheduler = CampaignScheduler(campaign_config or CampaignConfig())

    def on_result(result: JobResult) -> None:
        if first_error and result.verdict == "error":
            scheduler.request_cancel("first-error")

    results = scheduler.run(jobs, on_result=on_result)
    report = aggregate(source, plan, results, max_states=max_states, por=por)
    report.interrupted = scheduler.interrupted
    return report
