"""The campaign job model.

A *campaign* is a batch of independent KISS checking runs — the shape of
the paper's evaluation (Table 1: 18 drivers × dozens of device-extension
fields, one sequential checking run per field).  Each run is one
:class:`CheckJob`: a program (as source text, so jobs cross process
boundaries cheaply), a property (``race`` on one target, or the
program's own assertions), and the checker configuration.

Jobs are plain picklable data.  The scheduler never sees ASTs or
backend state — workers parse and check, and hand back a
:class:`JobResult` summary.  The fields that influence the verdict
(program text, transformer configuration, backend budget) also define
the content-addressed cache key (see :mod:`repro.campaign.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.race import RaceTarget

#: Kiss() keyword arguments a job may carry, with the campaign defaults.
#: ``map_traces``/``validate_traces``/``observe``/``witness`` are
#: execution options, not part of the cache key: they do not change the
#: verdict (a witness *describes* a safe verdict; it never forks the key).
KISS_DEFAULTS: Dict[str, Any] = {
    "max_ts": 0,
    "max_states": 300_000,
    "use_alias_analysis": True,
    "backend": "explicit",
    "cegar_rounds": 16,
    "inline": False,
    "strategy": "kiss",
    "rounds": 2,
    "por": False,
    "cs_tile": None,
    "map_traces": False,
    "validate_traces": False,
    "observe": False,
    "witness": False,
}

#: The subset of the configuration that can change a verdict — these
#: keys (plus the lowered program text and the property/target) make up
#: the cache key.
VERDICT_KEYS = (
    "max_ts",
    "max_states",
    "use_alias_analysis",
    "backend",
    "cegar_rounds",
    "inline",
    "strategy",
    "rounds",
    "por",
    "cs_tile",
)


def parse_target(text: str) -> RaceTarget:
    """``"Struct.field"`` → field target, bare name → global target."""
    if "." in text:
        struct, fname = text.split(".", 1)
        return RaceTarget.field_of(struct, fname)
    return RaceTarget.global_var(text)


@dataclass(frozen=True)
class CheckJob:
    """One checking run: driver × property × target.

    ``job_id`` is a human-readable unique name within the campaign
    (e.g. ``"fakemodem/DEVICE_EXTENSION.ioPending"``); ``driver`` groups
    jobs for the summary table.  ``prop`` is ``"race"`` (then ``target``
    names the location as ``"Struct.field"`` or a global),
    ``"assertion"``, or ``"fuzz"`` (a differential run of both checkers
    over the source — see :mod:`repro.fuzz`).  ``config`` holds
    ``Kiss()`` keyword overrides; fuzz jobs may add ``fuzz_``-prefixed
    oracle options (e.g. ``fuzz_race``), which never reach ``Kiss()``.
    """

    job_id: str
    driver: str
    source: str
    prop: str = "race"  # "race" | "assertion" | "fuzz"
    target: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.prop not in ("race", "assertion", "fuzz"):
            raise ValueError(f"unknown property {self.prop!r}")
        if self.prop == "race" and not self.target:
            raise ValueError("race jobs need a target")

    def kiss_kwargs(self) -> Dict[str, Any]:
        kw = dict(KISS_DEFAULTS)
        kw.update(self.config)
        return {k: v for k, v in kw.items() if not k.startswith("fuzz_")}

    def race_target(self) -> Optional[RaceTarget]:
        return parse_target(self.target) if self.prop == "race" else None

    def verdict_config(self) -> Dict[str, Any]:
        """The configuration slice that participates in the cache key."""
        kw = self.kiss_kwargs()
        out = {k: kw[k] for k in VERDICT_KEYS}
        out["prop"] = self.prop
        out["target"] = self.target
        # Fuzz oracle options change the verdict, so they key too.
        out.update({k: v for k, v in self.config.items() if k.startswith("fuzz_")})
        return out

    # -- (de)serialization for the write-ahead journal ---------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "driver": self.driver,
            "source": self.source,
            "prop": self.prop,
            "target": self.target,
            "config": dict(self.config),
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "CheckJob":
        return CheckJob(
            job_id=d["job_id"],
            driver=d["driver"],
            source=d["source"],
            prop=d.get("prop", "race"),
            target=d.get("target"),
            config=dict(d.get("config") or {}),
        )


@dataclass
class JobResult:
    """The outcome of one job, slim enough to cache and pickle.

    ``verdict`` uses the :class:`~repro.core.checker.KissResult`
    vocabulary (``"safe"`` / ``"error"`` / ``"resource-bound"``), plus
    the campaign-only ``"cancelled"`` for jobs cooperatively cancelled
    mid-flight (never cached, never a verdict — see
    :mod:`repro.cancel`); ``table_verdict`` maps it to the Table 1
    vocabulary.  ``detail`` carries the backend message, or the
    timeout/crash/cancellation note for degraded verdicts.
    """

    job_id: str
    driver: str
    prop: str
    target: Optional[str]
    verdict: str
    error_kind: Optional[str] = None
    states: int = 0
    transitions: int = 0
    checks_emitted: int = 0
    checks_pruned: int = 0
    wall_s: float = 0.0
    cache_hit: bool = False
    attempts: int = 1
    detail: str = ""
    #: ``kiss-metrics/1`` snapshot (:mod:`repro.obs`) when the job ran
    #: with the ``observe`` execution option; survives cache round-trips.
    metrics: Optional[Dict[str, Any]] = None
    #: ``kiss-witness/1`` certificate when the job ran with the
    #: ``witness`` execution option and emitted one; survives cache
    #: round-trips (certificates attach to entries, never key them).
    witness: Optional[Dict[str, Any]] = None

    @property
    def table_verdict(self) -> str:
        """Table 1 vocabulary: ``race`` / ``no-race`` / ``unresolved``
        (any error reached through the harness counts as a race, as in
        :func:`repro.drivers.corpus.check_driver`)."""
        if self.verdict in ("resource-bound", "cancelled"):
            return "unresolved"
        if self.verdict == "error":
            return "race" if self.prop == "race" else "error"
        return "no-race" if self.prop == "race" else "safe"

    def as_kiss_result(self):
        """Reconstruct a slim :class:`~repro.core.checker.KissResult`
        (verdicts, kinds, backend stats — no ASTs or traces, those do not
        cross process/cache boundaries) for API compatibility."""
        from repro.core.checker import KissResult  # deferred: avoid import cycle
        from repro.seqcheck.trace import CheckResult, CheckStats, CheckStatus

        status = {
            "safe": CheckStatus.SAFE,
            "error": CheckStatus.ERROR,
            "resource-bound": CheckStatus.EXHAUSTED,
            # a cancelled check proved nothing: same API posture as an
            # exhausted budget (no verdict, no witness)
            "cancelled": CheckStatus.EXHAUSTED,
        }[self.verdict]
        violation = None
        if self.verdict == "error":
            violation = "assert" if self.error_kind in ("race", "assertion") else self.error_kind
        backend = CheckResult(
            status,
            violation_kind=violation,
            message=self.detail,
            stats=CheckStats(states=self.states, transitions=self.transitions),
        )
        return KissResult(
            verdict=self.verdict,
            error_kind=self.error_kind,
            target=parse_target(self.target) if self.target else None,
            backend_result=backend,
            checks_emitted=self.checks_emitted,
            checks_pruned=self.checks_pruned,
        )

    # -- (de)serialization for the JSONL cache ------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "job_id": self.job_id,
            "driver": self.driver,
            "prop": self.prop,
            "target": self.target,
            "verdict": self.verdict,
            "error_kind": self.error_kind,
            "states": self.states,
            "transitions": self.transitions,
            "checks_emitted": self.checks_emitted,
            "checks_pruned": self.checks_pruned,
            "wall_s": round(self.wall_s, 6),
            "detail": self.detail,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if self.witness is not None:
            out["witness"] = self.witness
        return out

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "JobResult":
        return JobResult(
            job_id=d["job_id"],
            driver=d["driver"],
            prop=d["prop"],
            target=d.get("target"),
            verdict=d["verdict"],
            error_kind=d.get("error_kind"),
            states=d.get("states", 0),
            transitions=d.get("transitions", 0),
            checks_emitted=d.get("checks_emitted", 0),
            checks_pruned=d.get("checks_pruned", 0),
            wall_s=d.get("wall_s", 0.0),
            detail=d.get("detail", ""),
            metrics=d.get("metrics"),
            witness=d.get("witness"),
        )
