"""Job execution — the code that runs inside worker processes.

A worker receives a picklable :class:`~repro.campaign.jobs.CheckJob`,
parses its source (memoized per process: a corpus driver contributes one
job per device-extension field, all sharing one program), runs the full
KISS pipeline, and returns a plain-dict outcome.

The per-job wall-clock timeout is enforced *inside* the job's process
with ``SIGALRM`` (``setitimer``, so fractional seconds work).  The
checkers are pure Python, so the alarm interrupts them between bytecodes
and the worker survives to take the next job — no pool teardown, no
orphaned processes.  Where the alarm is unavailable (non-main thread,
platforms without ``SIGALRM``) jobs run untimed and rely on the backend
state budget, which is the paper's own resource bound.

Memory is bounded the same way the wall clock is: a per-worker
``RLIMIT_AS`` soft ceiling (``CampaignConfig.memory_limit``, CLI
``--memory-limit``) turns a runaway job's allocations into a
``MemoryError`` raised *inside* the worker, which degrades that one job
to ``"resource-bound"`` instead of letting the OS OOM killer shoot the
worker (which would cost the whole pool a rebuild).  Pool workers arm
the ceiling once at startup (:func:`pool_init`); serial runs arm and
restore it around each job.

Cancellation is cooperative (:mod:`repro.cancel`): when the runtime
hands the job a sentinel-file token path, the worker installs it as the
ambient token for the job's duration; the checking backends poll it at
iteration boundaries and raise :class:`repro.cancel.Cancelled`, which
degrades the job to the ``"cancelled"`` outcome (detail ``cancelled[:
reason]`` — never cached, never a verdict).

Fault points for chaos testing (:mod:`repro.faults`): ``worker_start``
on entry, ``mid_check`` between parse and the pipeline.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from typing import Dict, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

from repro import cancel, faults, obs
from repro.core.checker import Kiss, KissResult
from repro.lang import parse
from repro.lang.ast import Program

from .jobs import CheckJob

#: source text -> parsed program, per process (workers are reused).
_parse_memo: Dict[str, Program] = {}


class JobTimeout(Exception):
    pass


def _parse(source: str) -> Program:
    prog = _parse_memo.get(source)
    if prog is None:
        prog = parse(source)
        _parse_memo[source] = prog
    return prog


def _alarm_available() -> bool:
    return hasattr(signal, "SIGALRM") and threading.current_thread() is threading.main_thread()


def set_memory_limit(mb: Optional[int]) -> Optional[int]:
    """Arm an ``RLIMIT_AS`` soft ceiling of ``mb`` megabytes; returns the
    previous soft limit so callers can restore it, or None when nothing
    was armed (no ``resource`` module, or ``mb`` is None)."""
    if mb is None or resource is None:
        return None
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    limit = mb << 20
    if hard != resource.RLIM_INFINITY:
        limit = min(limit, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):  # pragma: no cover - exotic rlimit configs
        return None
    return soft


class _memory_ceiling:
    """Context manager arming the ``RLIMIT_AS`` soft ceiling for one job
    and restoring the previous limit on exit (no-op when ``mb`` is
    None).  Pool workers skip this: :func:`pool_init` armed the ceiling
    for the worker's whole life."""

    def __init__(self, mb: Optional[int]):
        self.mb = mb
        self._prev: Optional[int] = None

    def __enter__(self):
        self._prev = set_memory_limit(self.mb)
        return self

    def __exit__(self, *exc) -> bool:
        if self._prev is not None and resource is not None:
            _, hard = resource.getrlimit(resource.RLIMIT_AS)
            resource.setrlimit(resource.RLIMIT_AS, (self._prev, hard))
        return False


def pool_init(memory_limit: Optional[int], plan: Optional["faults.FaultPlan"]) -> None:
    """Pool-worker initializer: arm the per-worker memory ceiling and
    install the campaign's fault plan (with fresh per-process
    counters)."""
    set_memory_limit(memory_limit)
    faults.install(plan.fresh() if plan is not None else None)


class _deadline:
    """Context manager arming SIGALRM for ``seconds`` (no-op if None or
    the alarm is unavailable).

    The timer repeats: if a delivery lands while a GC/weakref callback
    is on the stack, Python *swallows* the raised exception ("Exception
    ignored in ..."), so a one-shot alarm could be lost and the job
    would run unbounded.  The next interval tick lands in ordinary
    bytecode and raises for real.  The interval is kept well under the
    timeout itself so a swallowed delivery is retried while the overrun
    is still small relative to the budget.
    """

    REARM_S = 0.01

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self.armed = False

    def _fire(self, signum, frame):
        raise JobTimeout()

    def __enter__(self):
        if self.seconds is not None and _alarm_available():
            self._old = signal.signal(signal.SIGALRM, self._fire)
            signal.setitimer(
                signal.ITIMER_REAL, self.seconds, min(self.seconds, self.REARM_S)
            )
            self.armed = True
        return self

    def __exit__(self, *exc):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old)
        return False


def _fuzz_outcome(job: CheckJob, prog: Program, outcome):
    """Differential-oracle jobs (``prop == "fuzz"``): run both checkers
    and report agreement as ``"safe"``, a verdict divergence as
    ``"error"`` (``error_kind`` = the divergence direction), and an
    exhausted budget on either side as ``"resource-bound"``."""
    from repro.fuzz.oracle import differential_check

    kw = job.kiss_kwargs()
    recorder, ctx = obs.maybe_observing(kw.get("observe", False))
    with ctx:
        v = differential_check(
            prog,
            max_ts=kw["max_ts"],
            max_states=kw["max_states"],
            race_global=job.config.get("fuzz_race"),
            strategy=kw["strategy"],
            rounds=kw["rounds"],
            por=kw["por"],
            witness=bool(job.config.get("fuzz_witness", False)),
        )
    if v.diverged:
        verdict, kind = "error", v.divergence
    elif not v.conclusive:
        verdict, kind = "resource-bound", None
    else:
        verdict, kind = "safe", None
    metrics = recorder.metrics() if kw.get("observe") and recorder is not None else None
    out, _ = outcome(verdict, error_kind=kind, detail=v.describe(), metrics=metrics)
    out["states"] = v.con_states + v.seq_states
    return out, None


def execute_job(
    job: CheckJob,
    timeout: Optional[float] = None,
    attempt: int = 1,
    memory_limit: Optional[int] = None,
    pooled: bool = False,
    cancel_path: Optional[str] = None,
) -> Tuple[dict, Optional[KissResult]]:
    """Run one job to a verdict.  Returns ``(outcome dict, KissResult)``;
    the rich result is for in-process callers (it holds ASTs and traces
    and is dropped at process boundaries).

    Outcomes never raise: timeouts become the ``"resource-bound"``
    graceful-degradation verdict, a ``MemoryError`` (the per-worker
    ceiling, or a genuine exhaustion) becomes ``"resource-bound"`` with
    a ``memory:`` detail, a delivered cancellation (``cancel_path``
    sentinel) becomes the ``"cancelled"`` outcome, and any other
    exception becomes a ``"crash"`` outcome for the scheduler's retry
    logic.
    """
    start = time.monotonic()

    def outcome(verdict, *, error_kind=None, detail="", rich=None, stats=None, tr=None,
                metrics=None, witness=None):
        return (
            {
                "verdict": verdict,
                "error_kind": error_kind,
                "states": stats.states if stats else 0,
                "transitions": stats.transitions if stats else 0,
                "checks_emitted": tr.checks_emitted if tr else 0,
                "checks_pruned": tr.checks_pruned if tr else 0,
                "wall_s": time.monotonic() - start,
                "detail": detail,
                "metrics": metrics,
                "witness": witness,
            },
            rich,
        )

    token = cancel.CancelToken(cancel_path) if cancel_path else None
    try:
        with faults.job_context(job_id=job.job_id, attempt=attempt, timeout=timeout,
                                pooled=pooled), \
                _memory_ceiling(None if pooled else memory_limit), \
                _deadline(timeout), cancel.scope(token):
            cancel.poll()
            faults.fire("worker_start")
            prog = _parse(job.source)
            faults.fire("mid_check")
            if job.prop == "fuzz":
                return _fuzz_outcome(job, prog, outcome)
            kiss = Kiss(**job.kiss_kwargs())
            if job.prop == "assertion":
                r = kiss.check_assertions(prog)
            else:
                r = kiss.check_race(prog, job.race_target())
        stats = r.backend_result.stats if r.backend_result else None
        return outcome(
            r.verdict,
            error_kind=r.error_kind,
            detail=r.backend_result.message if r.backend_result else "",
            rich=r,
            stats=stats,
            tr=r,
            metrics=r.metrics,
            witness=r.witness,
        )
    except cancel.Cancelled as exc:
        reason = str(exc)
        return outcome("cancelled", detail=f"cancelled: {reason}" if reason else "cancelled")
    except JobTimeout:
        _parse_memo.pop(job.source, None)  # a partial parse never lands here, but be safe
        return outcome("resource-bound", detail=f"timeout after {timeout}s")
    except MemoryError as exc:
        # The worker's memory ceiling (RLIMIT_AS) or a genuine
        # exhaustion: degrade this one job, keep the worker alive.
        return outcome("resource-bound", detail="memory: " + (str(exc) or "MemoryError"))
    except Exception:
        return outcome("crash", detail="crash: " + traceback.format_exc(limit=8))


def pool_entry(job: CheckJob, timeout: Optional[float], attempt: int = 1,
               cancel_path: Optional[str] = None) -> dict:
    """Pool-side entry point: like :func:`execute_job` but drops the
    unpicklable rich result."""
    return execute_job(job, timeout, attempt=attempt, pooled=True,
                       cancel_path=cancel_path)[0]
