"""Observability: phase tracing and checker metrics (docs/OBSERVABILITY.md).

Instrumentation points throughout the pipeline call :func:`span` and
:func:`inc`; both are no-ops until a :class:`Recorder` is installed with
:func:`observing` (or a pipeline entry point does so on your behalf —
``Kiss(observe=True)``, the campaign ``observe`` execution option, or
``python -m repro profile``).
"""

from .recorder import (
    METRICS_SCHEMA,
    Counters,
    NullRecorder,
    Recorder,
    Span,
    current,
    inc,
    make_event,
    maybe_observing,
    observing,
    span,
)
from .report import (
    PROFILE_SCHEMA,
    SchemaError,
    profile_document,
    render_metrics,
    validate_metrics,
    validate_profile,
)

__all__ = [
    "METRICS_SCHEMA",
    "PROFILE_SCHEMA",
    "Counters",
    "NullRecorder",
    "Recorder",
    "SchemaError",
    "Span",
    "current",
    "inc",
    "make_event",
    "maybe_observing",
    "observing",
    "profile_document",
    "render_metrics",
    "span",
    "validate_metrics",
    "validate_profile",
]
