"""Zero-dependency tracing and metrics for the checking pipeline.

The pipeline is instrumented with two primitives:

* :class:`Span` — a context manager timing one *phase* (``parse``,
  ``transform``, ``explicit``, ``cegar``, …) with ``time.monotonic``.
  Spans nest; each records its parent, so the event stream reconstructs
  the phase tree of a run.
* :class:`Counters` — a registry of monotonically non-decreasing named
  counts (states explored, transitions, CEGAR iterations, SAT calls,
  bebop summaries, alias-analysis prunes, cache hits, …).

Observability is **off by default**: instrumentation points call the
module-level :func:`span` / :func:`inc`, which delegate to the *current*
recorder — a :class:`NullRecorder` unless a real :class:`Recorder` has
been installed with :func:`observing`.  The null hooks do no allocation
and no clock reads, so the disabled cost is one attribute lookup and one
no-op call per instrumentation point (measured by
``benchmarks/bench_obs_overhead.py``; the hot loops avoid even that by
flushing bulk counters once per phase from stats the checkers already
keep).

Events share the campaign telemetry envelope (see
:mod:`repro.campaign.telemetry`): every event is one JSON object with an
``event`` name and a monotonic-relative timestamp ``t`` in seconds,
built by :func:`make_event`.  Span events add ``span`` / ``id`` /
``parent`` (and ``wall_s`` on ``span_end``).

The recorder is intentionally not thread-safe: one recorder observes one
in-process pipeline run.  Campaign workers each build their own recorder
inside the worker process (see :mod:`repro.campaign.worker`).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

#: JSONL schema tag carried by :meth:`Recorder.metrics` snapshots
#: (defined with every other document schema in :mod:`repro.schemas`).
from repro.schemas import METRICS_SCHEMA


def make_event(event: str, t: float, **fields) -> dict:
    """The shared event envelope: ``{"event": ..., "t": ...}`` plus
    event-specific fields.  Both the campaign :class:`Telemetry` stream
    and the span stream build their events here, so the two JSONL
    schemas stay unified."""
    obj = {"event": event, "t": round(t, 6)}
    obj.update(fields)
    return obj


class Counters:
    """Named non-negative counts.  Increments must be non-negative —
    counters only accumulate, so per-phase conservation checks (e.g.
    ``states_explored`` equals the sum of per-phase visits) stay
    meaningful."""

    __slots__ = ("_data",)

    def __init__(self):
        self._data: Dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> int:
        if n < 0:
            raise ValueError(f"counter {name!r}: negative increment {n}")
        value = self._data.get(name, 0) + n
        self._data[name] = value
        return value

    def get(self, name: str) -> int:
        return self._data.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(sorted(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)


class Span:
    """One timed phase; returned by :meth:`Recorder.span` and used as a
    context manager.  Exits must nest properly (stack discipline); the
    recorder raises on a mismatched exit."""

    __slots__ = ("_recorder", "name", "fields", "span_id", "parent_id", "t_start", "child_s")

    def __init__(self, recorder: "Recorder", name: str, fields: dict):
        self._recorder = recorder
        self.name = name
        self.fields = fields
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.t_start = 0.0
        self.child_s = 0.0  # wall clock of direct children, for self-time

    def __enter__(self) -> "Span":
        self._recorder._enter(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._recorder._exit(self)
        return False


class _NullSpan:
    """The do-nothing span handed out when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: every hook is a no-op."""

    enabled = False

    def span(self, name: str, **fields) -> _NullSpan:
        return _NULL_SPAN

    def inc(self, name: str, n: int = 1) -> None:
        pass


class Recorder:
    """Collects span events and counters for one pipeline run.

    ``clock`` is injectable for deterministic tests; it must be
    monotonic (the default is :func:`time.monotonic`)."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._t0 = clock()
        self.events: List[dict] = []
        self.counters = Counters()
        self._stack: List[Span] = []
        self._next_id = 1
        # name -> [calls, wall_s, self_s], in first-seen order
        self._phases: Dict[str, List[float]] = {}

    # -- span plumbing ------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._t0

    def span(self, name: str, **fields) -> Span:
        return Span(self, name, fields)

    def _enter(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.t_start = self._now()
        self._stack.append(span)
        self.events.append(
            make_event(
                "span_start", span.t_start, span=span.name, id=span.span_id,
                parent=span.parent_id, **span.fields,
            )
        )

    def _exit(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} exited out of order")
        self._stack.pop()
        t_end = self._now()
        wall = t_end - span.t_start
        if self._stack:
            self._stack[-1].child_s += wall
        calls_wall_self = self._phases.setdefault(span.name, [0, 0.0, 0.0])
        calls_wall_self[0] += 1
        calls_wall_self[1] += wall
        calls_wall_self[2] += wall - span.child_s
        self.events.append(
            make_event(
                "span_end", t_end, span=span.name, id=span.span_id,
                parent=span.parent_id, wall_s=round(wall, 6),
            )
        )

    def inc(self, name: str, n: int = 1) -> None:
        self.counters.inc(name, n)

    # -- export ---------------------------------------------------------------------

    def metrics(self) -> dict:
        """A picklable snapshot: per-phase timings plus counters.

        ``phases`` lists one row per distinct span name, in first-entry
        order.  ``wall_s`` includes nested spans; ``self_s`` excludes
        the direct children (so a breakdown table sums sensibly)."""
        if self._stack:
            raise RuntimeError(
                f"metrics() inside open span {self._stack[-1].name!r}"
            )
        return {
            "schema": METRICS_SCHEMA,
            "wall_s": round(self._now(), 6),
            "phases": [
                {
                    "name": name,
                    "calls": calls,
                    "wall_s": round(wall, 6),
                    "self_s": round(self_s, 6),
                }
                for name, (calls, wall, self_s) in self._phases.items()
            ],
            "counters": self.counters.as_dict(),
        }

    def jsonl(self) -> str:
        """The span event stream as JSONL text (one event per line)."""
        return "".join(json.dumps(e) + "\n" for e in self.events)

    def write_jsonl(self, path: str) -> None:
        from repro.ioutil import atomic_write_text  # deferred: keep obs import-light

        atomic_write_text(path, self.jsonl())


# ---------------------------------------------------------------------------
# The current recorder (module-level, process-local)
# ---------------------------------------------------------------------------

_NULL = NullRecorder()
_current = _NULL


def current():
    """The recorder instrumentation points are feeding right now."""
    return _current


def span(name: str, **fields):
    """Open a span on the current recorder (no-op when disabled)."""
    return _current.span(name, **fields)


def inc(name: str, n: int = 1) -> None:
    """Bump a counter on the current recorder (no-op when disabled)."""
    _current.inc(name, n)


class observing:
    """Install ``recorder`` as the current recorder for a ``with`` block
    (restores the previous one on exit, so observed runs nest)."""

    def __init__(self, recorder: Recorder):
        self.recorder = recorder
        self._prev = None

    def __enter__(self) -> Recorder:
        global _current
        self._prev = _current
        _current = self.recorder
        return self.recorder

    def __exit__(self, *exc) -> bool:
        global _current
        _current = self._prev
        return False


class _nullcontext:
    def __init__(self, value=None):
        self.value = value

    def __enter__(self):
        return self.value

    def __exit__(self, *exc) -> bool:
        return False


def maybe_observing(enable: bool):
    """``(recorder, context manager)`` for an optionally observed run.

    When a recorder is already installed, the run joins it (nested
    pipelines contribute to the ambient stream).  Otherwise ``enable``
    picks between a fresh recorder and the null recorder."""
    if _current.enabled:
        return _current, _nullcontext(_current)
    if enable:
        rec = Recorder()
        return rec, observing(rec)
    return None, _nullcontext(None)
