"""Rendering and validation of metrics snapshots.

Two output forms for one :meth:`~repro.obs.recorder.Recorder.metrics`
snapshot:

* :func:`render_metrics` — the per-phase breakdown and counter tables
  printed by ``python -m repro profile`` (via
  :func:`repro.reporting.render_table`);
* :func:`profile_document` — the machine-readable JSON document
  (``kiss-profile/1``) written by ``profile --json``, the shape the
  ``BENCH_*.json`` trajectory and the CI artifact use.

:func:`validate_metrics` / :func:`validate_profile` check the documented
schemas (docs/OBSERVABILITY.md); the golden-file tests and the CI job
run them over real output.  The validators live with every other
document schema in :mod:`repro.schemas` and are re-exported here for
API stability.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.reporting import render_table
from repro.schemas import (  # noqa: F401  (re-exported API)
    METRICS_SCHEMA,
    PROFILE_SCHEMA,
    SchemaError,
    validate_metrics,
    validate_profile,
)


def render_metrics(metrics: dict, title: str = "Per-phase breakdown") -> str:
    """The human-readable profile: a phase table (calls, wall, self,
    share of total) and a counter table."""
    validate_metrics(metrics)
    total = metrics["wall_s"] or 1.0
    phase_rows: List[List[object]] = [
        [
            row["name"],
            row["calls"],
            f"{row['wall_s']:.4f}",
            f"{row['self_s']:.4f}",
            f"{100.0 * row['wall_s'] / total:.1f}%",
        ]
        for row in metrics["phases"]
    ]
    out = [
        render_table(
            ["Phase", "Calls", "Wall(s)", "Self(s)", "% of run"],
            phase_rows or [["(no spans recorded)", "", "", "", ""]],
            title=title,
        )
    ]
    counters = metrics["counters"]
    if counters:
        out.append("")
        out.append(
            render_table(
                ["Counter", "Value"],
                [[k, v] for k, v in counters.items()],
                title="Counters",
            )
        )
    return "\n".join(out)


def profile_document(
    *,
    file: str,
    prop: str,
    target: Optional[str],
    verdict: str,
    config: Dict[str, object],
    metrics: dict,
) -> dict:
    """The ``kiss-profile/1`` JSON document for one profiled run."""
    return {
        "schema": PROFILE_SCHEMA,
        "file": file,
        "prop": prop,
        "target": target,
        "verdict": verdict,
        "config": dict(config),
        "metrics": validate_metrics(metrics),
    }
