"""Rendering and validation of metrics snapshots.

Two output forms for one :meth:`~repro.obs.recorder.Recorder.metrics`
snapshot:

* :func:`render_metrics` — the per-phase breakdown and counter tables
  printed by ``python -m repro profile`` (via
  :func:`repro.reporting.render_table`);
* :func:`profile_document` — the machine-readable JSON document
  (``kiss-profile/1``) written by ``profile --json``, the shape the
  ``BENCH_*.json`` trajectory and the CI artifact use.

:func:`validate_metrics` / :func:`validate_profile` check the documented
schemas (docs/OBSERVABILITY.md); the golden-file tests and the CI job
run them over real output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.reporting import render_table

from .recorder import METRICS_SCHEMA

#: Schema tag of the ``profile --json`` document.
PROFILE_SCHEMA = "kiss-profile/1"


class SchemaError(ValueError):
    """A metrics/profile document does not match its documented schema."""


def validate_metrics(doc: dict) -> dict:
    """Check a metrics snapshot against the ``kiss-metrics/1`` schema;
    returns ``doc`` for chaining, raises :class:`SchemaError` otherwise."""
    if not isinstance(doc, dict):
        raise SchemaError(f"metrics must be an object, got {type(doc).__name__}")
    if doc.get("schema") != METRICS_SCHEMA:
        raise SchemaError(f"unknown metrics schema {doc.get('schema')!r}")
    for key in ("wall_s", "phases", "counters"):
        if key not in doc:
            raise SchemaError(f"metrics missing key {key!r}")
    if not isinstance(doc["wall_s"], (int, float)) or doc["wall_s"] < 0:
        raise SchemaError(f"wall_s must be a non-negative number: {doc['wall_s']!r}")
    if not isinstance(doc["phases"], list):
        raise SchemaError("phases must be a list")
    for row in doc["phases"]:
        for key, typ in (("name", str), ("calls", int), ("wall_s", (int, float)),
                         ("self_s", (int, float))):
            if not isinstance(row.get(key), typ):
                raise SchemaError(f"phase row {row!r}: bad {key!r}")
        if row["calls"] < 1 or row["wall_s"] < 0:
            raise SchemaError(f"phase row {row!r}: negative count or time")
    if not isinstance(doc["counters"], dict):
        raise SchemaError("counters must be an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise SchemaError(f"counter {name!r} must be a non-negative int: {value!r}")
    return doc


def render_metrics(metrics: dict, title: str = "Per-phase breakdown") -> str:
    """The human-readable profile: a phase table (calls, wall, self,
    share of total) and a counter table."""
    validate_metrics(metrics)
    total = metrics["wall_s"] or 1.0
    phase_rows: List[List[object]] = [
        [
            row["name"],
            row["calls"],
            f"{row['wall_s']:.4f}",
            f"{row['self_s']:.4f}",
            f"{100.0 * row['wall_s'] / total:.1f}%",
        ]
        for row in metrics["phases"]
    ]
    out = [
        render_table(
            ["Phase", "Calls", "Wall(s)", "Self(s)", "% of run"],
            phase_rows or [["(no spans recorded)", "", "", "", ""]],
            title=title,
        )
    ]
    counters = metrics["counters"]
    if counters:
        out.append("")
        out.append(
            render_table(
                ["Counter", "Value"],
                [[k, v] for k, v in counters.items()],
                title="Counters",
            )
        )
    return "\n".join(out)


def profile_document(
    *,
    file: str,
    prop: str,
    target: Optional[str],
    verdict: str,
    config: Dict[str, object],
    metrics: dict,
) -> dict:
    """The ``kiss-profile/1`` JSON document for one profiled run."""
    return {
        "schema": PROFILE_SCHEMA,
        "file": file,
        "prop": prop,
        "target": target,
        "verdict": verdict,
        "config": dict(config),
        "metrics": validate_metrics(metrics),
    }


def validate_profile(doc: dict) -> dict:
    """Check a ``profile --json`` document; returns ``doc``."""
    if not isinstance(doc, dict):
        raise SchemaError(f"profile must be an object, got {type(doc).__name__}")
    if doc.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(f"unknown profile schema {doc.get('schema')!r}")
    for key in ("file", "prop", "verdict", "config", "metrics"):
        if key not in doc:
            raise SchemaError(f"profile missing key {key!r}")
    if doc["prop"] not in ("assertion", "race"):
        raise SchemaError(f"unknown prop {doc['prop']!r}")
    if doc["verdict"] not in ("safe", "error", "resource-bound"):
        raise SchemaError(f"unknown verdict {doc['verdict']!r}")
    if not isinstance(doc["config"], dict):
        raise SchemaError("config must be an object")
    validate_metrics(doc["metrics"])
    return doc
