"""kiss-repro — reproduction of "KISS: Keep It Simple and Sequential"
(Qadeer & Wu, PLDI 2004).

The package implements the paper's sequentialization of concurrent
programs, two sequential checking backends (explicit-state, and a
SLAM-lite boolean-program tier), a full-interleaving concurrent checker
used as the baseline, and a synthetic Windows-driver corpus used to
regenerate the paper's evaluation tables.

Typical use::

    from repro import parse, Kiss

    prog = parse(source_text)
    result = Kiss(max_ts=1).check_assertions(prog)
    if result.is_error:
        print(result.concurrent_trace)
"""

from repro.lang import parse, parse_core

__version__ = "1.0.0"

__all__ = ["parse", "parse_core", "Kiss", "KissResult", "RaceTarget", "sweep_ts", "__version__"]


def __getattr__(name):
    # Kiss and friends are imported lazily: repro.core pulls in the whole
    # checker stack, which the front-end-only uses don't need.
    if name in ("Kiss", "KissResult", "sweep_ts"):
        from repro.core import checker

        return getattr(checker, name)
    if name == "RaceTarget":
        from repro.core.race import RaceTarget

        return RaceTarget
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
