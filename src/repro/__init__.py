"""kiss-repro — reproduction of "KISS: Keep It Simple and Sequential"
(Qadeer & Wu, PLDI 2004).

The package implements the paper's sequentialization of concurrent
programs, two sequential checking backends (explicit-state, and a
SLAM-lite boolean-program tier), a full-interleaving concurrent checker
used as the baseline, and a synthetic Windows-driver corpus used to
regenerate the paper's evaluation tables.

Typical use::

    from repro import parse, Kiss

    prog = parse(source_text)
    result = Kiss(max_ts=1).check_assertions(prog)
    if result.is_error:
        print(result.concurrent_trace)
"""

from repro.lang import parse, parse_core

__version__ = "1.0.0"

__all__ = [
    "parse",
    "parse_core",
    "Kiss",
    "KissResult",
    "RaceTarget",
    "sweep_ts",
    "package_version",
    "__version__",
]


def package_version() -> str:
    """The installed distribution version (``pip install -e .`` metadata),
    falling back to the source tree's ``__version__`` when the package
    runs straight off ``PYTHONPATH=src`` without being installed.

    This is the version string surfaced by ``python -m repro --version``
    and stamped into ``kiss-campaign/1`` summaries and ``kiss-serve/1``
    result events, so artifacts record which code produced them."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        return __version__
    try:
        return version("kiss-repro")
    except PackageNotFoundError:
        return __version__


def __getattr__(name):
    # Kiss and friends are imported lazily: repro.core pulls in the whole
    # checker stack, which the front-end-only uses don't need.
    if name in ("Kiss", "KissResult", "sweep_ts"):
        from repro.core import checker

        return getattr(checker, name)
    if name == "RaceTarget":
        from repro.core.race import RaceTarget

        return RaceTarget
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
