"""The machine-readable document schemas and their validators.

Every JSON artifact the system emits carries a ``schema`` tag naming its
shape and revision:

==================  =======================================================
``kiss-metrics/1``  one :meth:`repro.obs.Recorder.metrics` snapshot
``kiss-profile/1``  ``python -m repro profile --json`` output
``kiss-campaign/1`` the end-of-campaign summary document
``kiss-serve/1``    one result event streamed by ``python -m repro serve``
``kiss-witness/1``  a safety certificate (:mod:`repro.witness`)
``kiss-journal/1``  one write-ahead job-journal record
                    (:mod:`repro.campaign.journal`)
==================  =======================================================

The validators here are deliberately hand-rolled (zero dependencies, no
jsonschema) and are the single source of truth: the producers in
:mod:`repro.obs`, :mod:`repro.campaign.telemetry`, and
:mod:`repro.serve` re-export them, golden-file tests run them over real
output, and the CI jobs run them over artifacts.  Keeping them in one
module means a schema revision is one diff, not a hunt across layers.

All validators return the document (for chaining) or raise
:class:`SchemaError`, a ``ValueError`` subclass.
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple, Union

#: Schema tag of :meth:`repro.obs.Recorder.metrics` snapshots.
METRICS_SCHEMA = "kiss-metrics/1"

#: Schema tag of the ``profile --json`` document.
PROFILE_SCHEMA = "kiss-profile/1"

#: Schema tag of the campaign summary document.
CAMPAIGN_SCHEMA = "kiss-campaign/1"

#: Schema tag of events streamed by the checking service.
SERVE_SCHEMA = "kiss-serve/1"

#: Schema tag of safety certificates (:mod:`repro.witness`).
WITNESS_SCHEMA = "kiss-witness/1"

#: The two certificate kinds: the explicit backend exports its frozen
#: reached-set, the cegar backend its final predicate abstraction.
WITNESS_KINDS = ("reached-set", "predicate-invariant")

#: What the independent validator can say about a certificate.
WITNESS_STATUSES = ("certified", "refuted", "unsupported")

#: The event vocabulary of a ``kiss-serve/1`` stream, in lifecycle
#: order: admission, first attempt, bounded retries, then exactly one
#: terminal event — ``done`` (a verdict) or ``cancelled`` (no verdict).
SERVE_EVENTS = ("queued", "started", "retry", "done", "cancelled")

#: Schema tag of write-ahead job-journal records
#: (:mod:`repro.campaign.journal`).
JOURNAL_SCHEMA = "kiss-journal/1"

#: Journal record vocabulary: admission (with the full job spec), the
#: attempts, then exactly one terminal record.  Replay precedence is
#: ``done > cancelled > abandoned``.
JOURNAL_EVENTS = ("admitted", "started", "done", "cancelled", "abandoned")

#: Where a served verdict came from: the content-addressed cache, a
#: fresh check, piggybacked on an identical in-flight submission, a run
#: with caching disabled, or a server-side swarm aggregation (the tile
#: results each carry their own cache state).
SERVE_CACHE_STATES = ("hit", "miss", "dedup", "off", "aggregate")

#: The verdict vocabulary shared by every layer
#: (:class:`repro.core.checker.KissResult` and everything built on it).
VERDICTS = ("safe", "error", "resource-bound")

#: The sequentialization strategies every layer agrees on: ``kiss``
#: (Figure 4, two context switches), ``rounds`` (the eager K-round
#: transform of :mod:`repro.rounds`), and ``lazy`` (the pc-guarded lazy
#: round-robin transform of :mod:`repro.lazy`).  Consumed by the CLI's
#: ``choices=``, :class:`repro.core.checker.Kiss`, the fuzz oracle, and
#: the campaign cache key — adding a strategy is a one-line change here.
STRATEGIES = ("kiss", "rounds", "lazy")


class SchemaError(ValueError):
    """A document does not match its documented schema."""


_TypeSpec = Union[type, Tuple[type, ...]]


def _require_object(doc: Any, schema: str, what: str) -> Dict[str, Any]:
    if not isinstance(doc, dict):
        raise SchemaError(f"{what} must be an object, got {type(doc).__name__}")
    if doc.get("schema") != schema:
        raise SchemaError(f"unknown {what} schema {doc.get('schema')!r}")
    return doc


def _require_keys(doc: Dict[str, Any], what: str,
                  spec: Sequence[Tuple[str, _TypeSpec]]) -> None:
    for key, kind in spec:
        if not isinstance(doc.get(key), kind):
            want = kind.__name__ if isinstance(kind, type) else "/".join(
                k.__name__ for k in kind)
            raise SchemaError(f"{what}: {key!r} missing or not {want}")


# ---------------------------------------------------------------------------
# kiss-metrics/1 and kiss-profile/1 (repro.obs)
# ---------------------------------------------------------------------------


def validate_metrics(doc: dict) -> dict:
    """Check a metrics snapshot against the ``kiss-metrics/1`` schema;
    returns ``doc`` for chaining, raises :class:`SchemaError` otherwise."""
    if not isinstance(doc, dict):
        raise SchemaError(f"metrics must be an object, got {type(doc).__name__}")
    if doc.get("schema") != METRICS_SCHEMA:
        raise SchemaError(f"unknown metrics schema {doc.get('schema')!r}")
    for key in ("wall_s", "phases", "counters"):
        if key not in doc:
            raise SchemaError(f"metrics missing key {key!r}")
    if not isinstance(doc["wall_s"], (int, float)) or doc["wall_s"] < 0:
        raise SchemaError(f"wall_s must be a non-negative number: {doc['wall_s']!r}")
    if not isinstance(doc["phases"], list):
        raise SchemaError("phases must be a list")
    for row in doc["phases"]:
        for key, typ in (("name", str), ("calls", int), ("wall_s", (int, float)),
                         ("self_s", (int, float))):
            if not isinstance(row.get(key), typ):
                raise SchemaError(f"phase row {row!r}: bad {key!r}")
        if row["calls"] < 1 or row["wall_s"] < 0:
            raise SchemaError(f"phase row {row!r}: negative count or time")
    if not isinstance(doc["counters"], dict):
        raise SchemaError("counters must be an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise SchemaError(f"counter {name!r} must be a non-negative int: {value!r}")
    return doc


def validate_profile(doc: dict) -> dict:
    """Check a ``profile --json`` document; returns ``doc``."""
    if not isinstance(doc, dict):
        raise SchemaError(f"profile must be an object, got {type(doc).__name__}")
    if doc.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(f"unknown profile schema {doc.get('schema')!r}")
    for key in ("file", "prop", "verdict", "config", "metrics"):
        if key not in doc:
            raise SchemaError(f"profile missing key {key!r}")
    if doc["prop"] not in ("assertion", "race"):
        raise SchemaError(f"unknown prop {doc['prop']!r}")
    if doc["verdict"] not in VERDICTS:
        raise SchemaError(f"unknown verdict {doc['verdict']!r}")
    if not isinstance(doc["config"], dict):
        raise SchemaError("config must be an object")
    validate_metrics(doc["metrics"])
    return doc


# ---------------------------------------------------------------------------
# kiss-campaign/1 (repro.campaign.telemetry)
# ---------------------------------------------------------------------------


def validate_summary(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Check a ``kiss-campaign/1`` document's shape and internal
    consistency; returns the document or raises :class:`SchemaError`."""

    def fail(msg: str):
        raise SchemaError(f"invalid {CAMPAIGN_SCHEMA} document: {msg}")

    if not isinstance(doc, dict):
        fail("not an object")
    if doc.get("schema") != CAMPAIGN_SCHEMA:
        fail(f"schema is {doc.get('schema')!r}")
    for key, kind in (("jobs", int), ("completed", int), ("interrupted_jobs", int),
                      ("deadline_hit", bool), ("verdicts", dict), ("table", dict),
                      ("drivers", list), ("cache", dict)):
        if not isinstance(doc.get(key), kind):
            fail(f"{key} missing or not {kind.__name__}")
    if doc["interrupted"] is not None and not isinstance(doc["interrupted"], str):
        fail("interrupted must be null or a signal name")
    if "version" in doc and not isinstance(doc["version"], str):
        fail("version must be a string")
    if doc["jobs"] != doc["completed"] + doc["interrupted_jobs"]:
        fail("jobs != completed + interrupted_jobs")
    for tally in (doc["verdicts"], doc["table"]):
        if any(not isinstance(v, int) or v < 0 for v in tally.values()):
            fail("negative or non-integer tally")
        if sum(tally.values()) != doc["jobs"]:
            fail("tallies do not sum to jobs")
    fields = 0
    for row in doc["drivers"]:
        for key in ("driver", "fields", "race", "no-race", "unresolved", "other",
                    "cached", "wall_s"):
            if key not in row:
                fail(f"driver row missing {key}")
        if row["race"] + row["no-race"] + row["unresolved"] + row["other"] != row["fields"]:
            fail(f"driver {row['driver']}: field counts do not sum")
        fields += row["fields"]
    if fields != doc["jobs"]:
        fail("driver rows do not cover all jobs")
    if not all(isinstance(doc["cache"].get(k), int) for k in ("hits", "misses")):
        fail("cache hits/misses missing")
    return doc


# ---------------------------------------------------------------------------
# kiss-serve/1 (repro.serve)
# ---------------------------------------------------------------------------


def validate_serve_event(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Check one streamed service event against the ``kiss-serve/1``
    schema; returns ``doc`` or raises :class:`SchemaError`.

    Every event carries the schema tag, an ``event`` name from
    :data:`SERVE_EVENTS`, a monotonic-relative timestamp ``t``, and the
    server-assigned ``job`` id.  ``queued`` adds the admission facts
    (tenant, cache key, dedupe flag); ``done`` adds the verdict and its
    provenance — and a ``done`` or ``cancelled`` event is the only way
    a stream ends (``cancelled`` carries a reason, never a verdict).
    """
    doc = _require_object(doc, SERVE_SCHEMA, "serve event")
    _require_keys(doc, "serve event", (("event", str), ("t", (int, float)),
                                       ("job", str)))
    if doc["event"] not in SERVE_EVENTS:
        raise SchemaError(f"unknown serve event {doc['event']!r}")
    if doc["t"] < 0:
        raise SchemaError(f"serve event t must be non-negative: {doc['t']!r}")
    if not doc["job"]:
        raise SchemaError("serve event job id is empty")
    if doc["event"] == "queued":
        _require_keys(doc, "queued event", (("tenant", str), ("key", str),
                                            ("deduped", bool)))
    elif doc["event"] == "started":
        _require_keys(doc, "started event", (("attempt", int),))
        if doc["attempt"] < 1:
            raise SchemaError(f"started attempt must be >= 1: {doc['attempt']!r}")
    elif doc["event"] == "retry":
        _require_keys(doc, "retry event", (("attempt", int), ("reason", str)))
    elif doc["event"] == "cancelled":
        _require_keys(doc, "cancelled event", (("reason", str),))
    elif doc["event"] == "done":
        _require_keys(doc, "done event", (("verdict", str), ("attempts", int),
                                          ("cache", str), ("wall_s", (int, float)),
                                          ("version", str)))
        if doc["verdict"] not in VERDICTS:
            raise SchemaError(f"unknown serve verdict {doc['verdict']!r}")
        if doc["cache"] not in SERVE_CACHE_STATES:
            raise SchemaError(f"unknown serve cache state {doc['cache']!r}")
        if doc["attempts"] < 0 or doc["wall_s"] < 0:
            raise SchemaError("done event attempts/wall_s must be non-negative")
        if doc.get("witness") is not None:
            w = doc["witness"]
            if not isinstance(w, dict):
                raise SchemaError("done event witness must be an object")
            _require_keys(w, "done event witness", (("kind", str),
                                                    ("program_sha256", str)))
            if w["kind"] not in WITNESS_KINDS:
                raise SchemaError(f"unknown witness kind {w['kind']!r}")
    return doc


# ---------------------------------------------------------------------------
# kiss-journal/1 (repro.campaign.journal)
# ---------------------------------------------------------------------------


def validate_journal_record(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Check one write-ahead journal record against the
    ``kiss-journal/1`` schema; returns ``doc`` or raises
    :class:`SchemaError`.

    Every record carries the schema tag, an ``event`` from
    :data:`JOURNAL_EVENTS`, a unix timestamp ``t``, and the ``job`` id.
    ``admitted`` additionally carries the content-addressed cache
    ``key``, the ``origin`` frontend, an optional ``tenant``, and the
    full job ``spec`` — enough to re-enqueue the job from the journal
    alone.  ``started`` carries the attempt number; ``done`` the
    verdict; ``cancelled``/``abandoned`` a reason string.
    """
    doc = _require_object(doc, JOURNAL_SCHEMA, "journal record")
    _require_keys(doc, "journal record", (("event", str), ("t", (int, float)),
                                          ("job", str)))
    if doc["event"] not in JOURNAL_EVENTS:
        raise SchemaError(f"unknown journal event {doc['event']!r}")
    if doc["t"] < 0:
        raise SchemaError(f"journal record t must be non-negative: {doc['t']!r}")
    if not doc["job"]:
        raise SchemaError("journal record job id is empty")
    if doc["event"] == "admitted":
        _require_keys(doc, "admitted record", (("key", str), ("origin", str),
                                               ("spec", dict)))
        if len(doc["key"]) != 64:
            raise SchemaError("admitted key must be a sha256 hex digest")
        if doc.get("tenant") is not None and not isinstance(doc["tenant"], str):
            raise SchemaError("admitted tenant must be null or a string")
        _require_keys(doc["spec"], "admitted spec", (("job_id", str),
                                                     ("driver", str),
                                                     ("source", str),
                                                     ("prop", str)))
    elif doc["event"] == "started":
        _require_keys(doc, "started record", (("attempt", int),))
        if doc["attempt"] < 1:
            raise SchemaError(f"started attempt must be >= 1: {doc['attempt']!r}")
    elif doc["event"] == "done":
        _require_keys(doc, "done record", (("verdict", str),))
        if doc["verdict"] not in VERDICTS:
            raise SchemaError(f"unknown journal verdict {doc['verdict']!r}")
    else:  # cancelled | abandoned
        _require_keys(doc, f"{doc['event']} record", (("reason", str),))
    return doc


# ---------------------------------------------------------------------------
# kiss-witness/1 (repro.witness)
# ---------------------------------------------------------------------------


def validate_witness(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Check a ``kiss-witness/1`` certificate's *shape*; returns ``doc``
    or raises :class:`SchemaError`.

    This is the cheap structural gate shared by the emitter, the
    campaign artifact writer, and the independent validator.  It says
    nothing about whether the invariant actually holds — that is the
    semantic judgment of :mod:`repro.witness.validate`.
    """
    doc = _require_object(doc, WITNESS_SCHEMA, "witness")
    _require_keys(doc, "witness", (("kind", str), ("backend", str),
                                   ("strategy", str), ("entry", str),
                                   ("program", str), ("program_sha256", str),
                                   ("invariant", dict), ("ghost", dict)))
    if doc["kind"] not in WITNESS_KINDS:
        raise SchemaError(f"unknown witness kind {doc['kind']!r}")
    if doc.get("rounds") is not None and not isinstance(doc["rounds"], int):
        raise SchemaError("witness rounds must be null or an int")
    if len(doc["program_sha256"]) != 64:
        raise SchemaError("witness program_sha256 must be a sha256 hex digest")
    inv = doc["invariant"]
    if doc["kind"] == "reached-set":
        if not isinstance(inv.get("states"), list) or not inv["states"]:
            raise SchemaError("reached-set witness needs a non-empty states list")
        for state in inv["states"]:
            _require_keys(state, "witness state", (("globals", list),
                                                   ("heap", list),
                                                   ("stacks", list)))
    else:
        if not isinstance(inv.get("predicates"), dict):
            raise SchemaError("predicate witness needs a predicates object")
        _require_keys(inv["predicates"], "witness predicates",
                      (("global", list), ("local", dict)))
        if not isinstance(inv.get("locations"), list):
            raise SchemaError("predicate witness needs a locations list")
        for loc in inv["locations"]:
            _require_keys(loc, "witness location", (("func", str), ("ordinal", int),
                                                    ("stmt", str), ("cubes", list)))
    return doc
