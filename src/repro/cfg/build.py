"""Construction of CFGs from core programs."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Block,
    Call,
    Choice,
    FuncDecl,
    Iter,
    Malloc,
    Program,
    Return,
    Skip,
    Stmt,
)
from repro.lang.lower import is_core_stmt

from .graph import Cfg, Node, Origin, ProgramCfg


class CfgBuildError(Exception):
    pass


def _origin_of(stmt: Stmt, func_name: str) -> Origin:
    tag = getattr(stmt, "kiss_tag", None) or "user"
    text = str(stmt)
    if len(text) > 60:
        text = text[:57] + "..."
    return Origin(sid=stmt.sid, tag=tag, func=func_name, text=text)


def _build_seq(cfg: Cfg, stmts: List[Stmt], func_name: str) -> Tuple[Optional[int], List[Node]]:
    """Build nodes for a statement sequence.

    Returns ``(entry_id, dangling)`` where ``dangling`` are nodes whose
    successor should be wired to whatever follows the sequence.  ``entry_id``
    is None for an empty sequence (caller wires around it).
    """
    entry: Optional[int] = None
    dangling: List[Node] = []
    for idx, s in enumerate(stmts):
        s_entry, s_dangling = _build_stmt(cfg, s, func_name)
        if s_entry is None:
            continue
        for d in dangling:
            d.succs.append(s_entry)
        if entry is None:
            entry = s_entry
        dangling = s_dangling
        if not dangling:
            # The rest of the sequence is unreachable (e.g. after return).
            # We still build it so node counts reflect program size, but
            # nothing is wired to it.
            for unreachable in stmts[idx + 1 :]:
                _build_stmt(cfg, unreachable, func_name)
            break
    return entry, dangling


def _build_stmt(cfg: Cfg, s: Stmt, func_name: str) -> Tuple[Optional[int], List[Node]]:
    if not is_core_stmt(s):
        raise CfgBuildError(f"statement is not in core form: {s}")
    if isinstance(s, Block):
        return _build_seq(cfg, s.stmts, func_name)
    if isinstance(s, Skip):
        n = cfg.new_node("skip", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Assign):
        n = cfg.new_node("assign", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Malloc):
        n = cfg.new_node("malloc", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Assert):
        n = cfg.new_node("assert", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Assume):
        n = cfg.new_node("assume", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Call):
        n = cfg.new_node("call", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, AsyncCall):
        n = cfg.new_node("async", s, _origin_of(s, func_name))
        return n.id, [n]
    if isinstance(s, Return):
        n = cfg.new_node("return", s, _origin_of(s, func_name))
        return n.id, []  # no fallthrough
    if isinstance(s, Atomic):
        sub = Cfg(f"{func_name}.atomic")
        sub_entry, sub_dangling = _build_seq(sub, s.body.stmts, func_name)
        if sub_entry is None:
            empty = sub.new_node("skip", None, Origin(tag="instr", func=func_name, text="atomic{}"))
            sub_entry = empty.id
            sub_dangling = [empty]
        sub.entry = sub_entry
        # Dangling sub nodes mark atomic-region exit by having no successors.
        n = cfg.new_node("atomic", s, _origin_of(s, func_name))
        n.sub = sub
        return n.id, [n]
    if isinstance(s, Choice):
        head = cfg.new_node("skip", None, Origin(sid=s.sid, tag="instr", func=func_name, text="choice"))
        dangling: List[Node] = []
        for branch in s.branches:
            b_entry, b_dangling = _build_seq(cfg, branch.stmts, func_name)
            if b_entry is None:
                # Empty branch falls straight through.
                dangling.append(_passthrough(cfg, head, func_name))
            else:
                head.succs.append(b_entry)
                dangling.extend(b_dangling)
        return head.id, dangling
    if isinstance(s, Iter):
        head = cfg.new_node("skip", None, Origin(sid=s.sid, tag="instr", func=func_name, text="iter"))
        b_entry, b_dangling = _build_seq(cfg, s.body.stmts, func_name)
        if b_entry is not None:
            head.succs.append(b_entry)
            for d in b_dangling:
                d.succs.append(head.id)
        # Exiting the loop: head also falls through.
        return head.id, [head]
    raise CfgBuildError(f"cannot build CFG for {type(s).__name__}")


def _passthrough(cfg: Cfg, head: Node, func_name: str) -> Node:
    n = cfg.new_node("skip", None, Origin(tag="instr", func=func_name, text="empty-branch"))
    head.succs.append(n.id)
    return n


def build_cfg(func: FuncDecl) -> Cfg:
    """Build the CFG of one core-form function.

    Falling off the end of the body returns (with the return type's default
    value when one is expected; see the interpreter).
    """
    cfg = Cfg(func.name)
    entry, dangling = _build_seq(cfg, func.body.stmts, func.name)
    exit_node = cfg.new_node(
        "return",
        Return(None),
        Origin(tag="instr", func=func.name, text="implicit return"),
    )
    if entry is None:
        entry = exit_node.id
    for d in dangling:
        d.succs.append(exit_node.id)
    cfg.entry = entry
    return cfg


def build_program_cfg(prog: Program) -> ProgramCfg:
    """Build CFGs for every function of a core program."""
    cfgs = {name: build_cfg(f) for name, f in prog.functions.items()}
    return ProgramCfg(prog, cfgs, prog.entry)
