"""Control-flow graphs over core programs."""

from .build import build_cfg, build_program_cfg
from .dot import cfg_to_dot, program_to_dot
from .graph import Cfg, Node, Origin, ProgramCfg

__all__ = [
    "Cfg",
    "Node",
    "Origin",
    "ProgramCfg",
    "build_cfg",
    "build_program_cfg",
    "cfg_to_dot",
    "program_to_dot",
]
