"""Graphviz (DOT) export of CFGs — for debugging and documentation."""

from __future__ import annotations

from typing import List

from .graph import Cfg, ProgramCfg


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cfg_to_dot(cfg: Cfg, cluster_index: int = 0) -> str:
    """One function's CFG as a DOT subgraph cluster."""
    lines: List[str] = [f'subgraph cluster_{cluster_index} {{']
    lines.append(f'  label="{_escape(cfg.func_name)}";')
    prefix = f"c{cluster_index}_"
    for node in cfg:
        shape = {
            "assert": "octagon",
            "assume": "diamond",
            "call": "box",
            "async": "box3d",
            "return": "invhouse",
            "atomic": "component",
        }.get(node.kind, "ellipse")
        label = _escape(f"{node.id}: {node.origin.text or node.kind}")
        style = ' style=bold' if node.id == cfg.entry else ""
        lines.append(f'  {prefix}{node.id} [shape={shape} label="{label}"{style}];')
        for succ in node.succs:
            lines.append(f"  {prefix}{node.id} -> {prefix}{succ};")
    lines.append("}")
    return "\n".join(lines)


def program_to_dot(pcfg: ProgramCfg) -> str:
    """A whole program's CFGs as one DOT digraph (one cluster per function)."""
    lines = ["digraph program {", "  node [fontname=monospace];"]
    for i, (name, cfg) in enumerate(sorted(pcfg.cfgs.items())):
        lines.append(cfg_to_dot(cfg, i))
    lines.append("}")
    return "\n".join(lines)
