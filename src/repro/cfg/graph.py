"""Control-flow graphs over core statements.

Each function gets one :class:`Cfg`.  Nodes execute a single core primitive
(assignment, malloc, assert, assume, skip, call, async, return) or an
``atomic`` region, which carries its own sub-CFG executed indivisibly.
``choice`` and ``iter`` contribute ``skip`` nodes with multiple successors.

Nodes carry an *origin*: the surface statement id (``sid``) they were
lowered/instrumented from, plus an instrumentation tag used by the KISS
error-trace mapper (:mod:`repro.core.tracemap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import Expr, Stmt, Var

# Instrumentation tags (see repro.core.transform / repro.core.tracemap).
TAG_USER = "user"  # a statement of the original program
TAG_INSTR = "instr"  # synthesized scheduling/raise plumbing
TAG_DISPATCH = "dispatch"  # schedule()'s call of a parked thread
TAG_INLINE_ASYNC = "inline-async"  # async executed synchronously (ts full)
TAG_CHECK = "check"  # race check_r/check_w body


@dataclass
class Origin:
    """Provenance of a CFG node."""

    sid: int = 0  # surface statement id (0 = synthesized)
    tag: str = TAG_USER
    func: str = ""  # original function name, if any
    text: str = ""  # short human-readable rendering

    def __str__(self) -> str:
        where = f"{self.func}:" if self.func else ""
        return f"{where}{self.text or self.tag}"


@dataclass
class Node:
    """A CFG node.

    ``kind`` is one of: ``skip``, ``assign``, ``malloc``, ``assert``,
    ``assume``, ``call``, ``async``, ``return``, ``atomic``.
    ``stmt`` is the core statement payload (None for pure ``skip`` nodes).
    ``succs`` are node ids within the same function's CFG.
    ``sub`` is the sub-CFG of an ``atomic`` node.
    """

    id: int
    kind: str
    stmt: Optional[Stmt] = None
    succs: List[int] = field(default_factory=list)
    sub: Optional["Cfg"] = None
    origin: Origin = field(default_factory=Origin)

    def __str__(self) -> str:
        return f"n{self.id}:{self.kind}"


class Cfg:
    """A single function's control-flow graph."""

    def __init__(self, func_name: str):
        self.func_name = func_name
        self.nodes: Dict[int, Node] = {}
        self.entry: int = -1
        self._next_id = 0

    def new_node(self, kind: str, stmt: Optional[Stmt] = None, origin: Optional[Origin] = None) -> Node:
        node = Node(self._next_id, kind, stmt, origin=origin or Origin())
        self.nodes[node.id] = node
        self._next_id += 1
        return node

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def succs(self, node_id: int) -> List[int]:
        return self.nodes[node_id].succs

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes.values())


@dataclass
class ProgramCfg:
    """CFGs for every function of a program, plus the program itself."""

    program: "object"
    cfgs: Dict[str, Cfg]
    entry: str

    def cfg(self, func_name: str) -> Cfg:
        try:
            return self.cfgs[func_name]
        except KeyError:
            raise KeyError(f"no CFG for function '{func_name}'") from None

    def size(self) -> int:
        """Total node count, including atomic sub-CFGs."""

        def cfg_size(c: Cfg) -> int:
            total = 0
            for n in c:
                total += 1
                if n.sub is not None:
                    total += cfg_size(n.sub)
            return total

        return sum(cfg_size(c) for c in self.cfgs.values())
