"""Front-end for the KISS parallel language (Figure 3 of the paper).

Public surface:

* :func:`repro.lang.parse` — source text → type-checked surface program
* :func:`repro.lang.parse_core` — source text → type-checked *core* program
* :mod:`repro.lang.ast` — AST node classes
* :class:`repro.lang.builder.ProgramBuilder` — programmatic construction
"""

from __future__ import annotations

from repro import obs

from .ast import Program
from .inline import inline_program
from .lower import is_core_program, lower_program
from .parser import parse_program
from .types import KissTypeError, check_program


def parse(src: str) -> Program:
    """Parse and type-check a surface program."""
    with obs.span("parse", bytes=len(src)):
        return check_program(parse_program(src))


def parse_core(src: str) -> Program:
    """Parse, type-check, and lower a program to core form."""
    prog = parse(src)
    with obs.span("lower"):
        return lower_program(prog)


__all__ = [
    "Program",
    "KissTypeError",
    "parse",
    "parse_core",
    "check_program",
    "lower_program",
    "is_core_program",
    "inline_program",
]
