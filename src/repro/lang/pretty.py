"""Pretty-printer: emit concrete syntax that re-parses to an equal program."""

from __future__ import annotations

from typing import List

from .ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    If,
    IntLit,
    Iter,
    Malloc,
    Nondet,
    NullLit,
    Program,
    Return,
    Skip,
    Stmt,
    Unary,
    Var,
    VarDecl,
    While,
)

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_PREC = 7
_POSTFIX_PREC = 8


def pretty_expr(e: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(e, IntLit):
        return str(e.value)
    if isinstance(e, BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, NullLit):
        return "null"
    if isinstance(e, Nondet):
        return "nondet"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Unary):
        inner = pretty_expr(e.operand, _UNARY_PREC)
        text = f"{e.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PREC else text
    if isinstance(e, Binary):
        prec = _PRECEDENCE[e.op]
        left = pretty_expr(e.left, prec)
        right = pretty_expr(e.right, prec + 1)
        text = f"{left} {e.op} {right}"
        return f"({text})" if parent_prec > prec else text
    if isinstance(e, Field):
        sep = "->" if e.arrow else "."
        return f"{pretty_expr(e.base, _POSTFIX_PREC)}{sep}{e.name}"
    raise ValueError(f"cannot pretty-print {e!r}")


class _Printer:
    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._lines: List[str] = []
        self._level = 0

    def line(self, text: str) -> None:
        self._lines.append(self._indent * self._level + text)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def block(self, b: Block, suffix: str = "") -> None:
        self._lines[-1] += " {"
        self._level += 1
        for s in b.stmts:
            self.stmt(s)
        self._level -= 1
        self.line("}" + suffix)

    def stmt(self, s: Stmt) -> None:
        if isinstance(s, Skip):
            self.line("skip;")
        elif isinstance(s, VarDecl):
            init = f" = {pretty_expr(s.init)}" if s.init is not None else ""
            self.line(f"{s.type} {s.name}{init};")
        elif isinstance(s, Assign):
            self.line(f"{pretty_expr(s.lhs)} = {pretty_expr(s.rhs)};")
        elif isinstance(s, Malloc):
            self.line(f"{pretty_expr(s.lhs)} = malloc({s.struct_name});")
        elif isinstance(s, Assert):
            self.line(f"assert({pretty_expr(s.cond)});")
        elif isinstance(s, Assume):
            self.line(f"assume({pretty_expr(s.cond)});")
        elif isinstance(s, Atomic):
            self.line("atomic")
            self.block(s.body)
        elif isinstance(s, Call):
            call = f"{s.func.name}({', '.join(pretty_expr(a) for a in s.args)})"
            if s.lhs is not None:
                self.line(f"{pretty_expr(s.lhs)} = {call};")
            else:
                self.line(f"{call};")
        elif isinstance(s, AsyncCall):
            self.line(f"async {s.func.name}({', '.join(pretty_expr(a) for a in s.args)});")
        elif isinstance(s, Return):
            if s.value is not None:
                self.line(f"return {pretty_expr(s.value)};")
            else:
                self.line("return;")
        elif isinstance(s, Block):
            self.line("{")
            self._level += 1
            for sub in s.stmts:
                self.stmt(sub)
            self._level -= 1
            self.line("}")
        elif isinstance(s, If):
            self.line(f"if ({pretty_expr(s.cond)})")
            if s.els is not None:
                self.block(s.then)
                self._lines[-1] += " else {"
                self._level += 1
                for sub in s.els.stmts:
                    self.stmt(sub)
                self._level -= 1
                self.line("}")
            else:
                self.block(s.then)
        elif isinstance(s, While):
            self.line(f"while ({pretty_expr(s.cond)})")
            self.block(s.body)
        elif isinstance(s, Choice):
            self.line("choice {")
            self._level += 1
            for sub in s.branches[0].stmts:
                self.stmt(sub)
            self._level -= 1
            for b in s.branches[1:]:
                self.line("} or {")
                self._level += 1
                for sub in b.stmts:
                    self.stmt(sub)
                self._level -= 1
            self.line("}")
        elif isinstance(s, Iter):
            self.line("iter")
            self.block(s.body)
        else:
            raise ValueError(f"cannot pretty-print statement {type(s).__name__}")


def pretty_stmt_block(b: Block, indent_level: int = 0) -> str:
    """Render the statements of a block (without surrounding braces)."""
    p = _Printer()
    p._level = indent_level
    for s in b.stmts:
        p.stmt(s)
    return "\n".join(p._lines)


def pretty_program(prog: Program) -> str:
    """Emit a whole program as re-parseable source text."""
    p = _Printer()
    for s in prog.structs.values():
        p.line(f"struct {s.name}")
        p._lines[-1] += " {"
        p._level += 1
        for fname, ftype in s.fields.items():
            p.line(f"{ftype} {fname};")
        p._level -= 1
        p.line("}")
        p.line("")
    for g in prog.globals.values():
        init = f" = {pretty_expr(g.init)}" if g.init is not None else ""
        p.line(f"{g.type} {g.name}{init};")
    if prog.globals:
        p.line("")
    for f in prog.functions.values():
        _print_function(p, f)
        p.line("")
    return p.text()


def _print_function(p: _Printer, f: FuncDecl) -> None:
    ret = str(f.ret) if f.ret is not None else "void"
    params = ", ".join(f"{q.type} {q.name}" for q in f.params)
    p.line(f"{ret} {f.name}({params})")
    # Emit hoisted locals (minus parameters) as declarations at the top so
    # the output re-parses to a program with the same locals table.
    body = f.body
    p._lines[-1] += " {"
    p._level += 1
    declared = {q.name for q in f.params}
    for name, typ in f.locals.items():
        if name not in declared and not _declared_in(body, name):
            p.line(f"{typ} {name};")
    for s in body.stmts:
        p.stmt(s)
    p._level -= 1
    p.line("}")


def _declared_in(b: Block, name: str) -> bool:
    from .ast import walk_stmts

    for s in walk_stmts(b):
        if isinstance(s, VarDecl) and s.name == name:
            return True
    return False
