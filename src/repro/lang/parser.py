"""Recursive-descent parser for the KISS parallel language.

Grammar sketch (C-like):

.. code-block:: none

    program     ::= (struct | global | function)*
    struct      ::= 'struct' ID '{' (type ID ';')* '}' ';'?
    global      ::= type ID ('=' expr)? ';'
    function    ::= ('void' | type) ID '(' params? ')' block
    stmt        ::= block | decl | assign | call | 'skip' ';'
                  | 'if' '(' expr ')' stmt ('else' stmt)?
                  | 'while' '(' expr ')' stmt
                  | 'assert' '(' expr ')' ';' | 'assume' '(' expr ')' ';'
                  | 'atomic' block | 'async' ID '(' args? ')' ';'
                  | 'return' expr? ';'
                  | 'choice' block ('or' block)* | 'iter' block

Expressions have the usual C precedence; ``nondet`` is a nondeterministic
boolean; ``malloc(Struct)`` may appear only as the right-hand side of an
assignment.  Calls are statements, not expressions (the paper's language).
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    BOOL,
    FUNC,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    GlobalDecl,
    If,
    IntLit,
    Iter,
    Malloc,
    Nondet,
    NullLit,
    Param,
    Pos,
    Program,
    PtrType,
    Return,
    Skip,
    StructDecl,
    StructType,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.kind} {token.text!r})")
        self.token = token


class Parser:
    """Recursive-descent parser over the token stream (see module doc)."""
    def __init__(self, src: str):
        self._toks = tokenize(src)
        self._i = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._toks[min(self._i + ahead, len(self._toks) - 1)]

    def _next(self) -> Token:
        t = self._toks[self._i]
        if t.kind != "EOF":
            self._i += 1
        return t

    def _at(self, kind: str, text: Optional[str] = None, ahead: int = 0) -> bool:
        t = self._peek(ahead)
        return t.kind == kind and (text is None or t.text == text)

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._at(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}", self._peek())
        return self._next()

    def _pos(self) -> Pos:
        t = self._peek()
        return Pos(t.line, t.col)

    # -- program -----------------------------------------------------------

    def parse_program(self) -> Program:
        prog = Program()
        while not self._at("EOF"):
            if self._at("KW", "struct"):
                s = self._struct()
                prog.structs[s.name] = s
            else:
                self._top_level(prog)
        return prog

    def _struct(self) -> StructDecl:
        pos = self._pos()
        self._expect("KW", "struct")
        name = self._expect("ID").text
        self._expect("OP", "{")
        fields = {}
        while not self._at("OP", "}"):
            ftype = self._type()
            fname = self._expect("ID").text
            self._expect("OP", ";")
            fields[fname] = ftype
        self._expect("OP", "}")
        if self._at("OP", ";"):
            self._next()
        return StructDecl(name, fields, pos)

    def _top_level(self, prog: Program) -> None:
        pos = self._pos()
        if self._at("KW", "void"):
            self._next()
            ret: Optional[Type] = None
        else:
            ret = self._type()
        name = self._expect("ID").text
        if self._at("OP", "("):
            self._next()
            params: List[Param] = []
            while not self._at("OP", ")"):
                ptype = self._type()
                pname = self._expect("ID").text
                params.append(Param(pname, ptype))
                if self._at("OP", ","):
                    self._next()
            self._expect("OP", ")")
            body = self._block()
            prog.functions[name] = FuncDecl(name, params, ret, body, pos=pos)
        else:
            if ret is None:
                raise ParseError("global variables cannot be void", self._peek())
            init = None
            if self._at("OP", "="):
                self._next()
                init = self._expr()
            self._expect("OP", ";")
            prog.globals[name] = GlobalDecl(name, ret, init, pos)

    # -- types -------------------------------------------------------------

    def _type(self) -> Type:
        t = self._peek()
        if t.kind == "KW" and t.text in ("int", "bool", "func"):
            self._next()
            base: Type = {"int": INT, "bool": BOOL, "func": FUNC}[t.text]
        elif t.kind == "ID":
            self._next()
            base = StructType(t.text)
        else:
            raise ParseError("expected a type", t)
        while self._at("OP", "*"):
            self._next()
            base = PtrType(base)
        return base

    def _looks_like_type(self) -> bool:
        """Decide declaration vs. statement when a line starts with ID."""
        if self._at("KW") and self._peek().text in ("int", "bool", "func"):
            return True
        if not self._at("ID"):
            return False
        # 'Struct * x' or 'Struct x' is a declaration; 'x = ...' is not.
        j = 1
        while self._at("OP", "*", ahead=j):
            j += 1
        return self._at("ID", ahead=j)

    # -- statements ----------------------------------------------------------

    def _block(self) -> Block:
        pos = self._pos()
        self._expect("OP", "{")
        stmts: List = []
        while not self._at("OP", "}"):
            stmts.append(self._stmt())
        self._expect("OP", "}")
        return Block(stmts, pos)

    def _stmt(self):
        pos = self._pos()
        t = self._peek()
        if t.kind == "OP" and t.text == "{":
            return self._block()
        if t.kind == "KW":
            handler = {
                "skip": self._skip_stmt,
                "if": self._if_stmt,
                "while": self._while_stmt,
                "assert": self._assert_stmt,
                "assume": self._assume_stmt,
                "atomic": self._atomic_stmt,
                "async": self._async_stmt,
                "return": self._return_stmt,
                "choice": self._choice_stmt,
                "iter": self._iter_stmt,
                "benign": self._benign_stmt,
            }.get(t.text)
            if handler is not None:
                return handler(pos)
        if self._looks_like_type():
            return self._decl_stmt(pos)
        return self._assign_or_call(pos)

    def _skip_stmt(self, pos: Pos) -> Skip:
        self._next()
        self._expect("OP", ";")
        return Skip(pos)

    def _if_stmt(self, pos: Pos) -> If:
        self._next()
        self._expect("OP", "(")
        cond = self._expr()
        self._expect("OP", ")")
        then = self._as_block(self._stmt())
        els = None
        if self._at("KW", "else"):
            self._next()
            els = self._as_block(self._stmt())
        return If(cond, then, els, pos)

    def _while_stmt(self, pos: Pos) -> While:
        self._next()
        self._expect("OP", "(")
        cond = self._expr()
        self._expect("OP", ")")
        return While(cond, self._as_block(self._stmt()), pos)

    def _assert_stmt(self, pos: Pos) -> Assert:
        self._next()
        self._expect("OP", "(")
        cond = self._expr()
        self._expect("OP", ")")
        self._expect("OP", ";")
        return Assert(cond, pos)

    def _assume_stmt(self, pos: Pos) -> Assume:
        self._next()
        self._expect("OP", "(")
        cond = self._expr()
        self._expect("OP", ")")
        self._expect("OP", ";")
        return Assume(cond, pos)

    def _atomic_stmt(self, pos: Pos) -> Atomic:
        self._next()
        return Atomic(self._block(), pos)

    def _async_stmt(self, pos: Pos) -> AsyncCall:
        self._next()
        fname = self._expect("ID").text
        self._expect("OP", "(")
        args = self._args()
        self._expect("OP", ")")
        self._expect("OP", ";")
        return AsyncCall(Var(fname), args, pos)

    def _return_stmt(self, pos: Pos) -> Return:
        self._next()
        value = None
        if not self._at("OP", ";"):
            value = self._expr()
        self._expect("OP", ";")
        return Return(value, pos)

    def _choice_stmt(self, pos: Pos) -> Choice:
        self._next()
        branches = [self._block()]
        while self._at("KW", "or"):
            self._next()
            branches.append(self._block())
        return Choice(branches, pos)

    def _iter_stmt(self, pos: Pos) -> Iter:
        self._next()
        return Iter(self._block(), pos)

    def _benign_stmt(self, pos: Pos) -> Block:
        """``benign { ... }`` — mark the accesses inside as benign (§6.1):
        the race instrumentation will not check them."""
        self._next()
        block = self._block()
        from .ast import walk_stmts

        for s in walk_stmts(block):
            s.kiss_benign = True
        return block

    def _decl_stmt(self, pos: Pos) -> VarDecl:
        typ = self._type()
        name = self._expect("ID").text
        init = None
        if self._at("OP", "="):
            self._next()
            init = self._rhs()
        self._expect("OP", ";")
        decl = VarDecl(name, typ, None, pos)
        if init is not None:
            # Keep declarations initializer-free; the parser splits
            # 'T x = e;' into a declaration plus an assignment so lowering
            # sees a uniform statement stream.
            return Block([decl, Assign(Var(name), init, pos)], pos)  # type: ignore[return-value]
        return decl

    def _assign_or_call(self, pos: Pos):
        # call statement: ID '(' ... ')' ';'
        if self._at("ID") and self._at("OP", "(", ahead=1):
            fname = self._next().text
            self._expect("OP", "(")
            args = self._args()
            self._expect("OP", ")")
            self._expect("OP", ";")
            return Call(None, Var(fname), args, pos)
        lhs = self._unary()
        self._expect("OP", "=")
        rhs = self._rhs()
        self._expect("OP", ";")
        if isinstance(rhs, Call):
            rhs.lhs = lhs
            return rhs
        if isinstance(rhs, Malloc):
            rhs.lhs = lhs
            return rhs
        return Assign(lhs, rhs, pos)

    def _rhs(self):
        """Assignment right-hand side: expr, call, or malloc."""
        pos = self._pos()
        if self._at("KW", "malloc"):
            self._next()
            self._expect("OP", "(")
            sname = self._expect("ID").text
            self._expect("OP", ")")
            return Malloc(Var("_"), sname, pos)
        if self._at("ID") and self._at("OP", "(", ahead=1):
            fname = self._next().text
            self._expect("OP", "(")
            args = self._args()
            self._expect("OP", ")")
            return Call(Var("_"), Var(fname), args, pos)
        return self._expr()

    def _args(self) -> List[Expr]:
        args: List[Expr] = []
        while not self._at("OP", ")"):
            args.append(self._expr())
            if self._at("OP", ","):
                self._next()
        return args

    @staticmethod
    def _as_block(stmt) -> Block:
        return stmt if isinstance(stmt, Block) else Block([stmt], stmt.pos)

    # -- expressions ---------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or()

    def _binary_level(self, sub, ops) -> Expr:
        left = sub()
        while self._at("OP") and self._peek().text in ops:
            op = self._next().text
            left = Binary(op, left, sub())
        return left

    def _or(self) -> Expr:
        return self._binary_level(self._and, ("||",))

    def _and(self) -> Expr:
        return self._binary_level(self._equality, ("&&",))

    def _equality(self) -> Expr:
        return self._binary_level(self._relational, ("==", "!="))

    def _relational(self) -> Expr:
        return self._binary_level(self._additive, ("<", "<=", ">", ">="))

    def _additive(self) -> Expr:
        return self._binary_level(self._multiplicative, ("+", "-"))

    def _multiplicative(self) -> Expr:
        return self._binary_level(self._unary, ("*", "/", "%"))

    def _unary(self) -> Expr:
        t = self._peek()
        if t.kind == "OP" and t.text in ("-", "!", "*", "&"):
            self._next()
            return Unary(t.text, self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        e = self._primary()
        while True:
            if self._at("OP", "->"):
                self._next()
                e = Field(e, self._expect("ID").text, arrow=True)
            elif self._at("OP", "."):
                self._next()
                e = Field(e, self._expect("ID").text, arrow=False)
            else:
                return e

    def _primary(self) -> Expr:
        t = self._peek()
        if t.kind == "INT":
            self._next()
            return IntLit(int(t.text))
        if t.kind == "KW" and t.text == "true":
            self._next()
            return BoolLit(True)
        if t.kind == "KW" and t.text == "false":
            self._next()
            return BoolLit(False)
        if t.kind == "KW" and t.text == "null":
            self._next()
            return NullLit()
        if t.kind == "KW" and t.text == "nondet":
            self._next()
            return Nondet()
        if t.kind == "ID":
            self._next()
            return Var(t.text)
        if t.kind == "OP" and t.text == "(":
            self._next()
            e = self._expr()
            self._expect("OP", ")")
            return e
        raise ParseError("expected an expression", t)


def parse_program(src: str) -> Program:
    """Parse a whole program from source text."""
    return Parser(src).parse_program()


def parse_stmt(src: str):
    """Parse a single statement (used by tests)."""
    p = Parser(src)
    s = p._stmt()
    p._expect("EOF")
    return s


def parse_expr(src: str) -> Expr:
    """Parse a single expression (used by tests)."""
    p = Parser(src)
    e = p._expr()
    p._expect("EOF")
    return e
