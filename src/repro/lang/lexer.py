"""Hand-written lexer for the KISS parallel language's C-like syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "int",
    "bool",
    "func",
    "void",
    "struct",
    "true",
    "false",
    "null",
    "nondet",
    "if",
    "else",
    "while",
    "return",
    "assert",
    "assume",
    "atomic",
    "async",
    "choice",
    "or",
    "iter",
    "skip",
    "malloc",
    "benign",
}

# Multi-character operators must precede their prefixes.
OPERATORS = [
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "&",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ID', 'INT', 'KW', 'OP', 'EOF'
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


def tokenize(src: str) -> List[Token]:
    """Tokenize ``src``; raises :class:`LexError` on illegal input."""
    return list(_tokens(src))


def _tokens(src: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(src)
    while i < n:
        c = src[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if src.startswith("//", i):
            while i < n and src[i] != "\n":
                i += 1
            continue
        if src.startswith("/*", i):
            end = src.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            skipped = src[i : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n") - 1 + 1
            else:
                col += len(skipped)
            i = end + 2
            continue
        if c.isdigit():
            j = i
            while j < n and src[j].isdigit():
                j += 1
            yield Token("INT", src[i:j], line, col)
            col += j - i
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            text = src[i:j]
            yield Token("KW" if text in KEYWORDS else "ID", text, line, col)
            col += j - i
            i = j
            continue
        for op in OPERATORS:
            if src.startswith(op, i):
                yield Token("OP", op, line, col)
                col += len(op)
                i += len(op)
                break
        else:
            raise LexError(f"illegal character {c!r}", line, col)
    yield Token("EOF", "", line, col)
