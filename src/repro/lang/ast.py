"""Abstract syntax for the KISS parallel language.

The language is the one formalized in Figure 3 of the paper, extended with
the features the paper says KISS handles as well: struct fields, function
parameters and return values, ``malloc``, and rich expressions in the
concrete syntax.  The *surface* AST defined here allows nested expressions,
``if``/``while``, and declarations; :mod:`repro.lang.lower` normalizes
surface programs into the paper's *core* statement forms (decisions on
variables, three-address statements, ``if``/``while`` encoded with
``choice``/``iter``/``assume``).

Core statements are a subset of the surface statement forms, marked below.
After lowering, a program contains only core statements; the KISS
instrumentation (:mod:`repro.core.transform`) consumes core programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Type:
    """Base class for language types.  Type objects are immutable values."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class IntType(Type):
    """Mathematical integers (bounded only by the checker)."""

    def __str__(self) -> str:
        return "int"


class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


class FuncType(Type):
    """The type of function *values* (targets of indirect calls)."""

    def __str__(self) -> str:
        return "func"


class PtrType(Type):
    """Pointer to ``elem`` (a value type or a struct)."""

    def __init__(self, elem: Type):
        self.elem = elem

    def __str__(self) -> str:
        return f"{self.elem}*"


class StructType(Type):
    """A named struct type; field layout lives in the program's struct table."""

    def __init__(self, name: str):
        self.name = name

    def __str__(self) -> str:
        return self.name


INT = IntType()
BOOL = BoolType()
FUNC = FuncType()


def ptr(elem: Type) -> PtrType:
    """Convenience constructor: ``ptr(INT)`` is ``int*``."""
    return PtrType(elem)


# ---------------------------------------------------------------------------
# Positions (for error messages and trace mapping)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Pos:
    """Source position; ``line == 0`` means synthesized code."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}" if self.line else "<synth>"


NOPOS = Pos()

_stmt_ids = itertools.count(1)


def fresh_stmt_id() -> int:
    """Allocate a program-unique statement id (used for trace origins)."""
    return next(_stmt_ids)


# ---------------------------------------------------------------------------
# Expressions (surface)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class NullLit(Expr):
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference; may also name a function (a ``func`` value)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operators: ``-`` ``!`` ``*`` (deref) ``&`` (address-of)."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operators: arithmetic, comparison, ``&&``/``||``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Field(Expr):
    """``base->name`` (``arrow=True``) or ``base.name``.

    ``base.name`` is only legal when ``base`` is itself a dereference; the
    type checker rewrites it.  In practice driver models use ``->``.
    """

    base: Expr
    name: str
    arrow: bool = True

    def __str__(self) -> str:
        sep = "->" if self.arrow else "."
        return f"{self.base}{sep}{self.name}"


@dataclass(frozen=True)
class Nondet(Expr):
    """Nondeterministic boolean (``nondet`` keyword); lowered to a choice."""

    def __str__(self) -> str:
        return "nondet"


# ---------------------------------------------------------------------------
# Lvalues (assignment targets, address-of operands)
# ---------------------------------------------------------------------------

# Lvalues are a subset of expressions: Var, Unary('*', e), Field(e, f).
Lvalue = Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class.  Every statement carries a unique id and a position.

    Statement ids survive lowering: a core statement produced from a surface
    statement inherits the surface statement's id, which is what error
    traces report.

    ``kiss_tag``/``kiss_spawn`` are provenance markers set by the KISS
    instrumentation (see :mod:`repro.core.transform`); ``None`` means the
    statement belongs to the original program.  ``kiss_benign`` marks
    statements inside a ``benign { ... }`` block: the §6.1 annotation
    directing the race instrumentation to skip their accesses.
    """

    __slots__ = ("sid", "pos", "kiss_tag", "kiss_spawn", "kiss_benign")

    def __init__(self, pos: Pos = NOPOS, sid: Optional[int] = None):
        self.sid = fresh_stmt_id() if sid is None else sid
        self.pos = pos
        self.kiss_tag: Optional[str] = None
        self.kiss_spawn: Optional[str] = None
        self.kiss_benign: bool = False


class Skip(Stmt):
    """No-op (``assume(true)`` in the paper's encoding)."""

    def __str__(self) -> str:
        return "skip;"


class VarDecl(Stmt):
    """Local variable declaration with optional initializer (surface only)."""

    __slots__ = ("name", "type", "init")

    def __init__(self, name: str, typ: Type, init: Optional[Expr] = None, pos: Pos = NOPOS):
        super().__init__(pos)
        self.name = name
        self.type = typ
        self.init = init

    def __str__(self) -> str:
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.type} {self.name}{init};"


class Assign(Stmt):
    """``lhs = rhs`` where ``lhs`` is an lvalue (surface form)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs: Lvalue, rhs: Expr, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.lhs = lhs
        self.rhs = rhs

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs};"


class Malloc(Stmt):
    """``lhs = malloc(StructName)`` — core statement."""

    __slots__ = ("lhs", "struct_name")

    def __init__(self, lhs: Lvalue, struct_name: str, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.lhs = lhs
        self.struct_name = struct_name

    def __str__(self) -> str:
        return f"{self.lhs} = malloc({self.struct_name});"


class Assert(Stmt):
    """``assert(e)`` — core when ``e`` is a variable or constant."""

    __slots__ = ("cond",)

    def __init__(self, cond: Expr, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.cond = cond

    def __str__(self) -> str:
        return f"assert({self.cond});"


class Assume(Stmt):
    """``assume(e)`` — blocks (concurrent) / kills the path (sequential)."""

    __slots__ = ("cond",)

    def __init__(self, cond: Expr, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.cond = cond

    def __str__(self) -> str:
        return f"assume({self.cond});"


class Atomic(Stmt):
    """``atomic { s }`` — body must be call-free, return-free, atomic-free."""

    __slots__ = ("body",)

    def __init__(self, body: "Block", pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.body = body

    def __str__(self) -> str:
        return f"atomic {self.body}"


class Call(Stmt):
    """``lhs = f(args)`` or ``f(args)``; ``func`` is a Var naming either a
    declared function (direct call) or a variable of ``func`` type
    (indirect call)."""

    __slots__ = ("lhs", "func", "args")

    def __init__(
        self,
        lhs: Optional[Lvalue],
        func: Var,
        args: Sequence[Expr],
        pos: Pos = NOPOS,
        sid: Optional[int] = None,
    ):
        super().__init__(pos, sid)
        self.lhs = lhs
        self.func = func
        self.args = list(args)

    def __str__(self) -> str:
        call = f"{self.func}({', '.join(map(str, self.args))})"
        return f"{self.lhs} = {call};" if self.lhs is not None else f"{call};"


class AsyncCall(Stmt):
    """``async f(args)`` — fork a thread running ``f(args)``."""

    __slots__ = ("func", "args")

    def __init__(self, func: Var, args: Sequence[Expr], pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.func = func
        self.args = list(args)

    def __str__(self) -> str:
        return f"async {self.func}({', '.join(map(str, self.args))});"


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.value = value

    def __str__(self) -> str:
        return f"return {self.value};" if self.value is not None else "return;"


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt], pos: Pos = NOPOS):
        super().__init__(pos)
        self.stmts = list(stmts)

    def __str__(self) -> str:
        inner = " ".join(str(s) for s in self.stmts)
        return "{ " + inner + " }"


class If(Stmt):
    """Surface ``if``; lowered to ``choice{assume(v);...[]assume(!v);...}``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Block, els: Optional[Block] = None, pos: Pos = NOPOS):
        super().__init__(pos)
        self.cond = cond
        self.then = then
        self.els = els

    def __str__(self) -> str:
        s = f"if ({self.cond}) {self.then}"
        if self.els is not None:
            s += f" else {self.els}"
        return s


class While(Stmt):
    """Surface ``while``; lowered to ``iter{assume(v); s}; assume(!v)``."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Block, pos: Pos = NOPOS):
        super().__init__(pos)
        self.cond = cond
        self.body = body

    def __str__(self) -> str:
        return f"while ({self.cond}) {self.body}"


class Choice(Stmt):
    """``choice { s1 } or { s2 } ...`` — nondeterministic branch (core)."""

    __slots__ = ("branches",)

    def __init__(self, branches: Sequence[Block], pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.branches = list(branches)

    def __str__(self) -> str:
        return "choice " + " or ".join(str(b) for b in self.branches)


class Iter(Stmt):
    """``iter { s }`` — execute body a nondeterministic number of times."""

    __slots__ = ("body",)

    def __init__(self, body: Block, pos: Pos = NOPOS, sid: Optional[int] = None):
        super().__init__(pos, sid)
        self.body = body

    def __str__(self) -> str:
        return f"iter {self.body}"


# ---------------------------------------------------------------------------
# Declarations and programs
# ---------------------------------------------------------------------------


@dataclass
class StructDecl:
    """``struct Name { type field; ... }``; field order is significant."""

    name: str
    fields: "Dict[str, Type]"
    pos: Pos = NOPOS

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self.fields)

    def __str__(self) -> str:
        body = " ".join(f"{t} {f};" for f, t in self.fields.items())
        return f"struct {self.name} {{ {body} }}"


@dataclass
class Param:
    name: str
    type: Type

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class FuncDecl:
    """A function: parameters, optional return type, locals, body."""

    name: str
    params: List[Param]
    ret: Optional[Type]
    body: Block
    locals: Dict[str, Type] = field(default_factory=dict)
    pos: Pos = NOPOS

    def __str__(self) -> str:
        rt = str(self.ret) if self.ret is not None else "void"
        ps = ", ".join(str(p) for p in self.params)
        return f"{rt} {self.name}({ps}) {self.body}"


@dataclass
class GlobalDecl:
    name: str
    type: Type
    init: Optional[Expr] = None
    pos: Pos = NOPOS

    def __str__(self) -> str:
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.type} {self.name}{init};"


@dataclass
class Program:
    """A whole program: struct table, globals, functions, entry point."""

    structs: Dict[str, StructDecl] = field(default_factory=dict)
    globals: Dict[str, GlobalDecl] = field(default_factory=dict)
    functions: Dict[str, FuncDecl] = field(default_factory=dict)
    entry: str = "main"

    def struct(self, name: str) -> StructDecl:
        try:
            return self.structs[name]
        except KeyError:
            raise KeyError(f"unknown struct '{name}'") from None

    def function(self, name: str) -> FuncDecl:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"unknown function '{name}'") from None

    def __str__(self) -> str:
        parts: List[str] = []
        parts.extend(str(s) for s in self.structs.values())
        parts.extend(str(g) for g in self.globals.values())
        parts.extend(str(f) for f in self.functions.values())
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

Const = Union[IntLit, BoolLit, NullLit]


def is_const(e: Expr) -> bool:
    """True for literal constants (including function names is NOT const)."""
    return isinstance(e, (IntLit, BoolLit, NullLit))


def is_atom(e: Expr) -> bool:
    """Atoms are the operands allowed in core statements: vars and consts."""
    return isinstance(e, Var) or is_const(e)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and all statements nested inside it, pre-order."""
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.stmts:
            yield from walk_stmts(s)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.els is not None:
            yield from walk_stmts(stmt.els)
    elif isinstance(stmt, While):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, (Iter, Atomic)):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Choice):
        for b in stmt.branches:
            yield from walk_stmts(b)


def walk_exprs(e: Expr):
    """Yield ``e`` and all subexpressions, pre-order."""
    yield e
    if isinstance(e, Unary):
        yield from walk_exprs(e.operand)
    elif isinstance(e, Binary):
        yield from walk_exprs(e.left)
        yield from walk_exprs(e.right)
    elif isinstance(e, Field):
        yield from walk_exprs(e.base)


def stmt_exprs(stmt: Stmt):
    """Yield the immediate expressions of a single statement (not nested
    statements' expressions)."""
    if isinstance(stmt, Assign):
        yield stmt.lhs
        yield stmt.rhs
    elif isinstance(stmt, Malloc):
        yield stmt.lhs
    elif isinstance(stmt, (Assert, Assume)):
        yield stmt.cond
    elif isinstance(stmt, Call):
        if stmt.lhs is not None:
            yield stmt.lhs
        yield stmt.func
        yield from stmt.args
    elif isinstance(stmt, AsyncCall):
        yield stmt.func
        yield from stmt.args
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, VarDecl):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
