"""Lowering surface programs to the paper's core statement forms.

Figure 3 of the paper gives a language where decisions are made on
variables and statements are in three-address form.  Section 3 shows the
standard encodings::

    if (v) s1 else s2  =  choice{assume(v); s1 [] assume(!v); s2}
    while (v) s        =  iter{assume(v); s}; assume(!v)

This pass applies those encodings, flattens nested expressions by
introducing fresh temporaries, splits declarations out of bodies (locals
become function-scoped, recorded in ``FuncDecl.locals``), and rewrites
``(*p).f`` to ``p->f``.  ``&&``/``||`` are lowered with C short-circuit
semantics so that instrumented programs perform exactly the memory reads
the original C program would.

The result is a *core program*: every statement satisfies
:func:`is_core_stmt`.  Core statements are what the KISS instrumentation
(Figures 4 and 5) is defined over.

Evaluation-order note: for an assignment through a complex lvalue, the
lvalue address is evaluated before the right-hand side (C leaves this
unspecified; we fix one order).
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from .ast import (
    BOOL,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    If,
    IntLit,
    Iter,
    Malloc,
    Nondet,
    NullLit,
    Pos,
    Program,
    PtrType,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
    is_atom,
    is_const,
)
from .types import Env, KissTypeError, typeof

TEMP_PREFIX = "__t"


class _FunctionLowerer:
    def __init__(self, prog: Program, func: FuncDecl):
        self.prog = prog
        self.func = func
        self.env = Env(prog, func)
        self._temp_counter = 0

    def _fresh(self, typ: Type) -> Var:
        while True:
            self._temp_counter += 1
            name = f"{TEMP_PREFIX}{self._temp_counter}"
            if not self.env.is_local(name):
                break
        self.env.declare_local(name, typ)
        return Var(name)

    # -- expressions --------------------------------------------------------

    def eval_expr(self, e: Expr, out: List[Stmt]) -> Expr:
        """Flatten ``e``; append evaluation statements to ``out`` and return
        an atom (variable or constant) holding its value."""
        if is_atom(e):
            return e
        v = self.eval_complex(e, out, target=None)
        return v

    def eval_complex(self, e: Expr, out: List[Stmt], target: Optional[Var]) -> Var:
        """Evaluate a non-atomic expression into ``target`` (or a fresh temp).

        Returns the variable holding the result.
        """
        if isinstance(e, Nondet):
            t = target if target is not None else self._fresh(BOOL)
            out.append(
                Choice(
                    [
                        Block([Assign(t, BoolLit(True))]),
                        Block([Assign(t, BoolLit(False))]),
                    ]
                )
            )
            return t
        if isinstance(e, Unary) and e.op in ("-", "!"):
            a = self.eval_expr(e.operand, out)
            t = target if target is not None else self._fresh(typeof(self.env, e))
            out.append(Assign(t, Unary(e.op, a)))
            return t
        if isinstance(e, Unary) and e.op == "*":
            p = self.eval_expr(e.operand, out)
            p = self._force_var(p, out)
            t = target if target is not None else self._fresh(typeof(self.env, e))
            out.append(Assign(t, Unary("*", p)))
            return t
        if isinstance(e, Unary) and e.op == "&":
            return self.eval_addr(e.operand, out, target)
        if isinstance(e, Binary) and e.op in ("&&", "||"):
            return self._short_circuit(e, out, target)
        if isinstance(e, Binary):
            a = self.eval_expr(e.left, out)
            b = self.eval_expr(e.right, out)
            t = target if target is not None else self._fresh(typeof(self.env, e))
            out.append(Assign(t, Binary(e.op, a, b)))
            return t
        if isinstance(e, Field):
            e = self._normalize_field(e)
            base = self.eval_expr(e.base, out)
            base = self._force_var(base, out)
            t = target if target is not None else self._fresh(typeof(self.env, e))
            out.append(Assign(t, Field(base, e.name)))
            return t
        raise KissTypeError(f"cannot lower expression {e}")

    def eval_addr(self, lv: Expr, out: List[Stmt], target: Optional[Var]) -> Var:
        """Evaluate ``&lv`` into a variable."""
        if isinstance(lv, Var):
            t = target if target is not None else self._fresh(PtrType(typeof(self.env, lv)))
            out.append(Assign(t, Unary("&", lv)))
            return t
        if isinstance(lv, Unary) and lv.op == "*":
            # &*e == e
            a = self.eval_expr(lv.operand, out)
            a = self._force_var(a, out)
            if target is not None:
                out.append(Assign(target, a))
                return target
            return a
        if isinstance(lv, Field):
            lv = self._normalize_field(lv)
            base = self.eval_expr(lv.base, out)
            base = self._force_var(base, out)
            t = target if target is not None else self._fresh(PtrType(typeof(self.env, lv)))
            out.append(Assign(t, Unary("&", Field(base, lv.name))))
            return t
        raise KissTypeError(f"'&' applied to non-lvalue {lv}")

    def _normalize_field(self, e: Field) -> Field:
        """Rewrite ``(*p).f`` to ``p->f``."""
        if e.arrow:
            return e
        base = e.base
        if isinstance(base, Unary) and base.op == "*":
            return Field(base.operand, e.name, arrow=True)
        raise KissTypeError(f"'.' field access on non-dereference {e}")

    def _force_var(self, atom: Expr, out: List[Stmt]) -> Var:
        """Core loads/stores need a *variable* base; copy constants in."""
        if isinstance(atom, Var):
            return atom
        t = self._fresh(self._const_type(atom))
        out.append(Assign(t, atom))
        return t

    def _const_type(self, c: Expr) -> Type:
        return typeof(self.env, c)

    def _short_circuit(self, e: Binary, out: List[Stmt], target: Optional[Var]) -> Var:
        t = target if target is not None else self._fresh(BOOL)
        left = self.eval_expr(e.left, out)
        tneg = self._fresh(BOOL)

        def branch(stmts: List[Stmt]) -> Block:
            return Block(stmts)

        if e.op == "&&":
            take: List[Stmt] = []
            self.eval_into(t, e.right, take)
            skip: List[Stmt] = [Assign(t, BoolLit(False))]
            guard_take = [Assume(left)] if isinstance(left, Var) else [Assume(left)]
            guard_skip = self._negated_guard(left, tneg)
            out.append(Choice([branch(guard_take + take), branch(guard_skip + skip)]))
        else:  # '||'
            take = [Assign(t, BoolLit(True))]
            skip = []
            self.eval_into(t, e.right, skip)
            guard_take = [Assume(left)]
            guard_skip = self._negated_guard(left, tneg)
            out.append(Choice([branch(guard_take + take), branch(guard_skip + skip)]))
        return t

    def _negated_guard(self, atom: Expr, tneg: Var) -> List[Stmt]:
        return [Assign(tneg, Unary("!", atom)), Assume(tneg)]

    def eval_into(self, target: Var, e: Expr, out: List[Stmt]) -> None:
        """Evaluate ``e`` and leave the result in ``target``."""
        if is_atom(e):
            out.append(Assign(target, e))
        else:
            self.eval_complex(e, out, target=target)

    # -- statements -----------------------------------------------------------

    def lower_block(self, b: Block) -> Block:
        out: List[Stmt] = []
        for s in b.stmts:
            self.lower_stmt(s, out)
        blk = Block(out, b.pos)
        blk.sid = b.sid
        return blk

    def lower_stmt(self, s: Stmt, out: List[Stmt]) -> None:
        start = len(out)
        self._lower_stmt(s, out)
        if getattr(s, "kiss_benign", False):
            from .ast import walk_stmts

            for emitted in out[start:]:
                for sub in walk_stmts(emitted):
                    sub.kiss_benign = True

    def _lower_stmt(self, s: Stmt, out: List[Stmt]) -> None:
        if isinstance(s, Block):
            for sub in s.stmts:
                self.lower_stmt(sub, out)
        elif isinstance(s, VarDecl):
            if not self.env.is_local(s.name):
                self.env.declare_local(s.name, s.type)
            if s.init is not None:
                self._lower_assign(Var(s.name), s.init, s, out)
        elif isinstance(s, Skip):
            out.append(self._tag(Skip(s.pos), s))
        elif isinstance(s, Assign):
            self._lower_assign(s.lhs, s.rhs, s, out)
        elif isinstance(s, Malloc):
            self._lower_malloc(s, out)
        elif isinstance(s, Assert):
            a = self.eval_expr(s.cond, out)
            out.append(self._tag(Assert(a, s.pos), s))
        elif isinstance(s, Assume):
            a = self.eval_expr(s.cond, out)
            out.append(self._tag(Assume(a, s.pos), s))
        elif isinstance(s, Atomic):
            body = self.lower_block(s.body)
            out.append(self._tag(Atomic(body, s.pos), s))
        elif isinstance(s, Call):
            self._lower_call(s, out)
        elif isinstance(s, AsyncCall):
            args = [self.eval_expr(a, out) for a in s.args]
            out.append(self._tag(AsyncCall(s.func, args, s.pos), s))
        elif isinstance(s, Return):
            if s.value is None:
                out.append(self._tag(Return(None, s.pos), s))
            else:
                a = self.eval_expr(s.value, out)
                out.append(self._tag(Return(a, s.pos), s))
        elif isinstance(s, If):
            self._lower_if(s, out)
        elif isinstance(s, While):
            self._lower_while(s, out)
        elif isinstance(s, Choice):
            branches = [self.lower_block(b) for b in s.branches]
            out.append(self._tag(Choice(branches, s.pos), s))
        elif isinstance(s, Iter):
            out.append(self._tag(Iter(self.lower_block(s.body), s.pos), s))
        else:
            raise KissTypeError(f"cannot lower statement {type(s).__name__}")

    @staticmethod
    def _tag(new: Stmt, orig: Stmt) -> Stmt:
        new.sid = orig.sid
        return new

    def _lower_assign(self, lhs: Expr, rhs: Expr, orig: Stmt, out: List[Stmt]) -> None:
        if isinstance(lhs, Var):
            stmts: List[Stmt] = []
            self.eval_into(lhs, rhs, stmts)
            self._tag_last(stmts, orig)
            out.extend(stmts)
            return
        if isinstance(lhs, Unary) and lhs.op == "*":
            p = self.eval_expr(lhs.operand, out)
            p = self._force_var(p, out)
            a = self.eval_expr(rhs, out)
            out.append(self._tag(Assign(Unary("*", p), a), orig))
            return
        if isinstance(lhs, Field):
            lhs = self._normalize_field(lhs)
            base = self.eval_expr(lhs.base, out)
            base = self._force_var(base, out)
            a = self.eval_expr(rhs, out)
            out.append(self._tag(Assign(Field(base, lhs.name), a), orig))
            return
        raise KissTypeError(f"assignment to non-lvalue {lhs}")

    def _tag_last(self, stmts: List[Stmt], orig: Stmt) -> None:
        if stmts:
            stmts[-1].sid = orig.sid

    def _lower_malloc(self, s: Malloc, out: List[Stmt]) -> None:
        if isinstance(s.lhs, Var):
            out.append(self._tag(Malloc(s.lhs, s.struct_name, s.pos), s))
            return
        t = self._fresh(PtrType(typeof(self.env, s.lhs)))
        out.append(self._tag(Malloc(t, s.struct_name, s.pos), s))
        self._lower_assign(s.lhs, t, s, out)

    def _lower_call(self, s: Call, out: List[Stmt]) -> None:
        args = [self.eval_expr(a, out) for a in s.args]
        if s.lhs is None or isinstance(s.lhs, Var):
            out.append(self._tag(Call(s.lhs, s.func, args, s.pos), s))
            return
        ret_t = typeof(self.env, s.lhs)
        t = self._fresh(ret_t)
        out.append(self._tag(Call(t, s.func, args, s.pos), s))
        self._lower_assign(s.lhs, t, s, out)

    def _lower_if(self, s: If, out: List[Stmt]) -> None:
        cond = self.eval_expr(s.cond, out)
        tneg = self._fresh(BOOL)
        then_body: List[Stmt] = [Assume(cond)]
        then_block = self.lower_block(s.then)
        then_body.extend(then_block.stmts)
        else_body: List[Stmt] = self._negated_guard(cond, tneg)
        if s.els is not None:
            else_body.extend(self.lower_block(s.els).stmts)
        out.append(self._tag(Choice([Block(then_body), Block(else_body)], s.pos), s))

    def _lower_while(self, s: While, out: List[Stmt]) -> None:
        body: List[Stmt] = []
        cond = self.eval_expr(s.cond, body)
        body.append(Assume(cond))
        body.extend(self.lower_block(s.body).stmts)
        out.append(self._tag(Iter(Block(body), s.pos), s))
        tail: List[Stmt] = []
        cond2 = self.eval_expr(s.cond, tail)
        tneg = self._fresh(BOOL)
        tail.extend(self._negated_guard(cond2, tneg))
        out.extend(tail)


def lower_function(prog: Program, func: FuncDecl) -> FuncDecl:
    """Lower one function in place; returns the same object."""
    lowerer = _FunctionLowerer(prog, func)
    func.body = lowerer.lower_block(func.body)
    return func


def lower_program(prog: Program) -> Program:
    """Lower a type-checked surface program to core form, in place."""
    for f in prog.functions.values():
        lower_function(prog, f)
    return prog


# ---------------------------------------------------------------------------
# Core-form validation
# ---------------------------------------------------------------------------


def _is_core_assign(s: Assign) -> bool:
    lhs, rhs = s.lhs, s.rhs
    if isinstance(lhs, Var):
        if is_atom(rhs):
            return True
        if isinstance(rhs, Unary) and rhs.op in ("-", "!") and is_atom(rhs.operand):
            return True
        if isinstance(rhs, Unary) and rhs.op == "*" and isinstance(rhs.operand, Var):
            return True
        if isinstance(rhs, Unary) and rhs.op == "&":
            lv = rhs.operand
            if isinstance(lv, Var):
                return True
            return isinstance(lv, Field) and lv.arrow and isinstance(lv.base, Var)
        if isinstance(rhs, Binary) and rhs.op not in ("&&", "||"):
            return is_atom(rhs.left) and is_atom(rhs.right)
        if isinstance(rhs, Field):
            return rhs.arrow and isinstance(rhs.base, Var)
        return False
    if isinstance(lhs, Unary) and lhs.op == "*" and isinstance(lhs.operand, Var):
        return is_atom(rhs)
    if isinstance(lhs, Field) and lhs.arrow and isinstance(lhs.base, Var):
        return is_atom(rhs)
    return False


def is_core_stmt(s: Stmt) -> bool:
    """True if ``s`` (recursively) is in core form."""
    if isinstance(s, Skip):
        return True
    if isinstance(s, Assign):
        return _is_core_assign(s)
    if isinstance(s, Malloc):
        return isinstance(s.lhs, Var)
    if isinstance(s, (Assert, Assume)):
        return is_atom(s.cond)
    if isinstance(s, Atomic):
        return all(is_core_stmt(x) for x in s.body.stmts)
    if isinstance(s, Call):
        return (s.lhs is None or isinstance(s.lhs, Var)) and all(is_atom(a) for a in s.args)
    if isinstance(s, AsyncCall):
        return all(is_atom(a) for a in s.args)
    if isinstance(s, Return):
        return s.value is None or is_atom(s.value)
    if isinstance(s, Block):
        return all(is_core_stmt(x) for x in s.stmts)
    if isinstance(s, Choice):
        return all(is_core_stmt(b) for b in s.branches)
    if isinstance(s, Iter):
        return is_core_stmt(s.body)
    return False


def is_core_program(prog: Program) -> bool:
    """True if every function body of ``prog`` is in core form."""
    return all(is_core_stmt(f.body) for f in prog.functions.values())


def clone_program(prog: Program) -> Program:
    """Deep-copy a program (transformations never mutate their input)."""
    return copy.deepcopy(prog)
