"""Type and well-formedness checking for the KISS parallel language.

Beyond ordinary typing, this module enforces the paper's side conditions
(Section 3): the body of ``atomic{s}`` is free of function calls (synchronous
and asynchronous), ``return`` statements, and nested ``atomic`` statements.

Structs are heap-only: variables of struct type are rejected; structs are
reached through pointers obtained from ``malloc``.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ast import (
    BOOL,
    FUNC,
    INT,
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    BoolLit,
    BoolType,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    FuncType,
    If,
    IntLit,
    IntType,
    Iter,
    Malloc,
    Nondet,
    NullLit,
    Program,
    PtrType,
    Return,
    Skip,
    Stmt,
    StructType,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
)


class KissTypeError(Exception):
    """Raised on any typing or well-formedness violation."""


class NullPtrType(Type):
    """The type of the ``null`` literal; compatible with every pointer."""

    def __str__(self) -> str:
        return "null_t"


NULL_T = NullPtrType()


def compatible(expected: Type, actual: Type) -> bool:
    """Assignment/argument compatibility."""
    if expected == actual:
        return True
    if isinstance(expected, PtrType) and isinstance(actual, NullPtrType):
        return True
    return False


class Env:
    """A typing environment: globals, plus one function's params and locals."""

    def __init__(self, prog: Program, func: Optional[FuncDecl] = None):
        self.prog = prog
        self.func = func
        self._locals: Dict[str, Type] = {}
        if func is not None:
            for p in func.params:
                self._locals[p.name] = p.type
            self._locals.update(func.locals)

    def declare_local(self, name: str, typ: Type) -> None:
        if name in self._locals:
            raise KissTypeError(f"duplicate local '{name}' in {self._fname()}")
        if name in self.prog.functions:
            raise KissTypeError(f"local '{name}' shadows a function in {self._fname()}")
        self._locals[name] = typ
        if self.func is not None:
            self.func.locals[name] = typ

    def lookup(self, name: str) -> Type:
        if name in self._locals:
            return self._locals[name]
        if name in self.prog.globals:
            return self.prog.globals[name].type
        if name in self.prog.functions:
            return FUNC
        raise KissTypeError(f"undefined variable '{name}' in {self._fname()}")

    def is_local(self, name: str) -> bool:
        return name in self._locals

    def _fname(self) -> str:
        return self.func.name if self.func is not None else "<global>"


def typeof(env: Env, e: Expr) -> Type:
    """Compute the type of ``e``, raising :class:`KissTypeError` if ill-typed."""
    if isinstance(e, IntLit):
        return INT
    if isinstance(e, BoolLit):
        return BOOL
    if isinstance(e, NullLit):
        return NULL_T
    if isinstance(e, Nondet):
        return BOOL
    if isinstance(e, Var):
        return env.lookup(e.name)
    if isinstance(e, Unary):
        t = typeof(env, e.operand)
        if e.op == "-":
            _require(isinstance(t, IntType), f"unary '-' on {t}")
            return INT
        if e.op == "!":
            _require(isinstance(t, BoolType), f"'!' on {t}")
            return BOOL
        if e.op == "*":
            _require(isinstance(t, PtrType), f"dereference of non-pointer {t}")
            return t.elem  # type: ignore[union-attr]
        if e.op == "&":
            _check_addressable(env, e.operand)
            return PtrType(t)
        raise KissTypeError(f"unknown unary operator {e.op!r}")
    if isinstance(e, Binary):
        lt = typeof(env, e.left)
        rt = typeof(env, e.right)
        if e.op in ("+", "-", "*", "/", "%"):
            _require(
                isinstance(lt, IntType) and isinstance(rt, IntType),
                f"arithmetic '{e.op}' on {lt}, {rt}",
            )
            return INT
        if e.op in ("<", "<=", ">", ">="):
            _require(
                isinstance(lt, IntType) and isinstance(rt, IntType),
                f"comparison '{e.op}' on {lt}, {rt}",
            )
            return BOOL
        if e.op in ("==", "!="):
            _require(_eq_comparable(lt, rt), f"'{e.op}' on incompatible {lt}, {rt}")
            return BOOL
        if e.op in ("&&", "||"):
            _require(
                isinstance(lt, BoolType) and isinstance(rt, BoolType),
                f"'{e.op}' on {lt}, {rt}",
            )
            return BOOL
        raise KissTypeError(f"unknown binary operator {e.op!r}")
    if isinstance(e, Field):
        base_t = typeof(env, e.base)
        if e.arrow:
            _require(
                isinstance(base_t, PtrType) and isinstance(base_t.elem, StructType),
                f"'->' on {base_t}",
            )
            struct = env.prog.struct(base_t.elem.name)  # type: ignore[union-attr]
        else:
            _require(isinstance(base_t, StructType), f"'.' on {base_t}")
            struct = env.prog.struct(base_t.name)  # type: ignore[union-attr]
        if e.name not in struct.fields:
            raise KissTypeError(f"struct {struct.name} has no field '{e.name}'")
        return struct.fields[e.name]
    raise KissTypeError(f"cannot type expression {e!r}")


def _eq_comparable(lt: Type, rt: Type) -> bool:
    if lt == rt and not isinstance(lt, StructType):
        return True
    if isinstance(lt, (PtrType, NullPtrType)) and isinstance(rt, (PtrType, NullPtrType)):
        return True
    return False


def _require(ok: bool, message: str) -> None:
    if not ok:
        raise KissTypeError(message)


def is_lvalue(e: Expr) -> bool:
    """Is ``e`` a legal assignment target (variable, dereference, field)?"""
    return isinstance(e, (Var, Field)) or (isinstance(e, Unary) and e.op == "*")


def _check_addressable(env: Env, e: Expr) -> None:
    if not is_lvalue(e):
        raise KissTypeError(f"'&' applied to non-lvalue {e}")


def _no_struct_var(typ: Type, what: str) -> None:
    if isinstance(typ, StructType):
        raise KissTypeError(f"{what} has struct type {typ}; structs are heap-only (use a pointer)")


class TypeChecker:
    """Checks a whole surface (or core) program."""

    def __init__(self, prog: Program):
        self.prog = prog

    def check(self) -> None:
        self._check_structs()
        for g in self.prog.globals.values():
            _no_struct_var(g.type, f"global '{g.name}'")
            self._check_named_type(g.type)
            if g.init is not None:
                env = Env(self.prog)
                t = typeof(env, g.init)
                if not compatible(g.type, t):
                    raise KissTypeError(f"global '{g.name}': initializer type {t} != {g.type}")
        if self.prog.entry not in self.prog.functions:
            raise KissTypeError(f"missing entry function '{self.prog.entry}'")
        for f in self.prog.functions.values():
            self._check_function(f)

    # -- pieces --------------------------------------------------------------

    def _check_structs(self) -> None:
        for s in self.prog.structs.values():
            for fname, ftype in s.fields.items():
                _no_struct_var(ftype, f"field '{s.name}.{fname}'")
                self._check_named_type(ftype)

    def _check_named_type(self, typ: Type) -> None:
        if isinstance(typ, PtrType):
            self._check_named_type(typ.elem)
        elif isinstance(typ, StructType) and typ.name not in self.prog.structs:
            raise KissTypeError(f"unknown struct '{typ.name}'")

    def _check_function(self, f: FuncDecl) -> None:
        env = Env(self.prog, f)
        for p in f.params:
            _no_struct_var(p.type, f"parameter '{p.name}' of {f.name}")
            self._check_named_type(p.type)
        if f.ret is not None:
            self._check_named_type(f.ret)
        self._check_stmt(env, f, f.body, in_atomic=False)

    def _check_stmt(self, env: Env, f: FuncDecl, s: Stmt, in_atomic: bool) -> None:
        if isinstance(s, Block):
            for sub in s.stmts:
                self._check_stmt(env, f, sub, in_atomic)
        elif isinstance(s, VarDecl):
            _no_struct_var(s.type, f"local '{s.name}'")
            self._check_named_type(s.type)
            if env.is_local(s.name):
                # Re-checking a program whose locals table is already
                # populated (e.g. a core program) is fine; a genuine
                # redeclaration at a different type is not.
                if env.lookup(s.name) != s.type:
                    raise KissTypeError(f"local '{s.name}' redeclared at a different type")
            else:
                env.declare_local(s.name, s.type)
        elif isinstance(s, Assign):
            self._check_assign(env, s)
        elif isinstance(s, Malloc):
            if s.struct_name not in self.prog.structs:
                raise KissTypeError(f"malloc of unknown struct '{s.struct_name}'")
            lt = self._lvalue_type(env, s.lhs)
            want = PtrType(StructType(s.struct_name))
            if lt != want:
                raise KissTypeError(f"malloc({s.struct_name}) assigned to {lt}")
        elif isinstance(s, (Assert, Assume)):
            t = typeof(env, s.cond)
            _require(isinstance(t, BoolType), f"{type(s).__name__.lower()} condition has type {t}")
        elif isinstance(s, Atomic):
            if in_atomic:
                raise KissTypeError("nested atomic statement")
            self._check_stmt(env, f, s.body, in_atomic=True)
        elif isinstance(s, Call):
            if in_atomic:
                raise KissTypeError("function call inside atomic")
            self._check_call(env, s)
        elif isinstance(s, AsyncCall):
            if in_atomic:
                raise KissTypeError("async call inside atomic")
            self._check_async(env, s)
        elif isinstance(s, Return):
            if in_atomic:
                raise KissTypeError("return inside atomic")
            if f.ret is None:
                if s.value is not None:
                    raise KissTypeError(f"{f.name}: void function returns a value")
            else:
                if s.value is None:
                    raise KissTypeError(f"{f.name}: missing return value")
                t = typeof(env, s.value)
                if not compatible(f.ret, t):
                    raise KissTypeError(f"{f.name}: return type {t} != {f.ret}")
        elif isinstance(s, If):
            _require(isinstance(typeof(env, s.cond), BoolType), "if condition must be bool")
            self._check_stmt(env, f, s.then, in_atomic)
            if s.els is not None:
                self._check_stmt(env, f, s.els, in_atomic)
        elif isinstance(s, While):
            _require(isinstance(typeof(env, s.cond), BoolType), "while condition must be bool")
            self._check_stmt(env, f, s.body, in_atomic)
        elif isinstance(s, Choice):
            for b in s.branches:
                self._check_stmt(env, f, b, in_atomic)
        elif isinstance(s, Iter):
            self._check_stmt(env, f, s.body, in_atomic)
        elif isinstance(s, Skip):
            pass
        else:
            raise KissTypeError(f"unknown statement {type(s).__name__}")

    def _lvalue_type(self, env: Env, lv: Expr) -> Type:
        if not is_lvalue(lv):
            raise KissTypeError(f"{lv} is not an lvalue")
        return typeof(env, lv)

    def _check_assign(self, env: Env, s: Assign) -> None:
        lt = self._lvalue_type(env, s.lhs)
        rt = typeof(env, s.rhs)
        if not compatible(lt, rt):
            raise KissTypeError(f"assignment of {rt} to {lt} in '{s}'")
        _no_struct_var(lt, f"assignment target '{s.lhs}'")

    def _check_call(self, env: Env, s: Call) -> None:
        name = s.func.name
        if name in self.prog.functions and not env.is_local(name):
            decl = self.prog.functions[name]
            if len(s.args) != len(decl.params):
                raise KissTypeError(
                    f"call to {name}: {len(s.args)} args, expected {len(decl.params)}"
                )
            for arg, p in zip(s.args, decl.params):
                at = typeof(env, arg)
                if not compatible(p.type, at):
                    raise KissTypeError(f"call to {name}: arg '{p.name}' has type {at}, expected {p.type}")
            if s.lhs is not None:
                if decl.ret is None:
                    raise KissTypeError(f"call to void function {name} used as a value")
                lt = self._lvalue_type(env, s.lhs)
                if not compatible(lt, decl.ret):
                    raise KissTypeError(f"call to {name}: result {decl.ret} assigned to {lt}")
        else:
            # Indirect call through a func-typed variable; the callee's
            # signature is unknown statically, so only zero-argument calls
            # are allowed (the paper's `v = v0()` form).
            t = env.lookup(name)
            if not isinstance(t, FuncType):
                raise KissTypeError(f"call target '{name}' has type {t}, not func")
            if s.args:
                raise KissTypeError("indirect calls take no arguments")

    def _check_async(self, env: Env, s: AsyncCall) -> None:
        name = s.func.name
        if name in self.prog.functions and not env.is_local(name):
            decl = self.prog.functions[name]
            if len(s.args) != len(decl.params):
                raise KissTypeError(
                    f"async {name}: {len(s.args)} args, expected {len(decl.params)}"
                )
            for arg, p in zip(s.args, decl.params):
                at = typeof(env, arg)
                if not compatible(p.type, at):
                    raise KissTypeError(f"async {name}: arg '{p.name}' has type {at}")
        else:
            t = env.lookup(name)
            if not isinstance(t, FuncType):
                raise KissTypeError(f"async target '{name}' has type {t}, not func")
            if s.args:
                raise KissTypeError("indirect async calls take no arguments")


def check_program(prog: Program) -> Program:
    """Type-check ``prog`` in place (populating ``FuncDecl.locals``)."""
    TypeChecker(prog).check()
    return prog
