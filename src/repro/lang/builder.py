"""A small DSL for constructing programs without writing concrete syntax.

Used by the driver-model generator and by tests that need many structurally
similar programs.  Example::

    b = ProgramBuilder()
    b.global_var("stopped", BOOL, BoolLit(False))
    f = b.function("main")
    f.stmt(Assign(Var("stopped"), BoolLit(True)))
    f.assert_(Unary("!", Var("stopped")))
    prog = b.build()          # type-checked surface program
    core = b.build_core()     # type-checked and lowered
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .ast import (
    Assert,
    Assign,
    Assume,
    AsyncCall,
    Atomic,
    Block,
    Call,
    Choice,
    Expr,
    FuncDecl,
    GlobalDecl,
    If,
    Iter,
    Malloc,
    Param,
    Program,
    Return,
    Stmt,
    StructDecl,
    Type,
    Var,
    VarDecl,
    While,
)
from .lower import lower_program
from .types import check_program


class FunctionBuilder:
    """Accumulates statements for one function."""

    def __init__(self, name: str, params: Sequence[Param] = (), ret: Optional[Type] = None):
        self.name = name
        self.params = list(params)
        self.ret_type = ret  # not `self.ret`: that's the statement method
        self._stmts: List[Stmt] = []

    # -- raw ------------------------------------------------------------------

    def stmt(self, s: Stmt) -> "FunctionBuilder":
        self._stmts.append(s)
        return self

    def stmts(self, ss: Sequence[Stmt]) -> "FunctionBuilder":
        self._stmts.extend(ss)
        return self

    # -- sugar ----------------------------------------------------------------

    def local(self, name: str, typ: Type) -> "FunctionBuilder":
        return self.stmt(VarDecl(name, typ))

    def assign(self, lhs: Expr, rhs: Expr) -> "FunctionBuilder":
        return self.stmt(Assign(lhs, rhs))

    def malloc(self, lhs: Expr, struct_name: str) -> "FunctionBuilder":
        return self.stmt(Malloc(lhs, struct_name))

    def assert_(self, cond: Expr) -> "FunctionBuilder":
        return self.stmt(Assert(cond))

    def assume(self, cond: Expr) -> "FunctionBuilder":
        return self.stmt(Assume(cond))

    def atomic(self, stmts: Sequence[Stmt]) -> "FunctionBuilder":
        return self.stmt(Atomic(Block(list(stmts))))

    def call(self, func: str, args: Sequence[Expr] = (), lhs: Optional[Expr] = None) -> "FunctionBuilder":
        return self.stmt(Call(lhs, Var(func), args))

    def async_call(self, func: str, args: Sequence[Expr] = ()) -> "FunctionBuilder":
        return self.stmt(AsyncCall(Var(func), args))

    def ret(self, value: Optional[Expr] = None) -> "FunctionBuilder":
        return self.stmt(Return(value))

    def if_(self, cond: Expr, then: Sequence[Stmt], els: Optional[Sequence[Stmt]] = None) -> "FunctionBuilder":
        els_block = Block(list(els)) if els is not None else None
        return self.stmt(If(cond, Block(list(then)), els_block))

    def while_(self, cond: Expr, body: Sequence[Stmt]) -> "FunctionBuilder":
        return self.stmt(While(cond, Block(list(body))))

    def choice(self, *branches: Sequence[Stmt]) -> "FunctionBuilder":
        return self.stmt(Choice([Block(list(b)) for b in branches]))

    def iter_(self, body: Sequence[Stmt]) -> "FunctionBuilder":
        return self.stmt(Iter(Block(list(body))))

    def build(self) -> FuncDecl:
        return FuncDecl(self.name, self.params, self.ret_type, Block(self._stmts))


class ProgramBuilder:
    """Accumulates structs, globals, and functions; ``build()`` type-checks."""
    def __init__(self, entry: str = "main"):
        self._prog = Program(entry=entry)
        self._funcs: List[FunctionBuilder] = []

    def struct(self, name: str, fields: dict) -> "ProgramBuilder":
        self._prog.structs[name] = StructDecl(name, dict(fields))
        return self

    def global_var(self, name: str, typ: Type, init: Optional[Expr] = None) -> "ProgramBuilder":
        self._prog.globals[name] = GlobalDecl(name, typ, init)
        return self

    def function(
        self, name: str, params: Sequence[Param] = (), ret: Optional[Type] = None
    ) -> FunctionBuilder:
        fb = FunctionBuilder(name, params, ret)
        self._funcs.append(fb)
        return fb

    def add_function(self, decl: FuncDecl) -> "ProgramBuilder":
        self._prog.functions[decl.name] = decl
        return self

    def build(self) -> Program:
        for fb in self._funcs:
            self._prog.functions[fb.name] = fb.build()
        self._funcs = []
        return check_program(self._prog)

    def build_core(self) -> Program:
        return lower_program(self.build())
