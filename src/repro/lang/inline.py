"""A conservative function inliner for core programs.

Driver models call tiny synchronization wrappers (lock acquire/release,
interlocked ops) constantly; each call costs the checkers a frame push,
a frame pop, and the instrumentation's ``if (raise) return`` plumbing.
Inlining them shrinks the explored state space without changing
behaviour.

A function is inlinable when ALL hold:

* it is not the entry point, not spawned by any ``async``, and its name
  is never used as a *value* (indirect-call targets must stay);
* it is not (mutually) recursive;
* its body contains no ``return`` except, optionally, one as the final
  statement (arbitrary early returns would need a goto construct the
  language deliberately lacks);
* its body is small (``max_stmts`` core statements).

Inlined bodies are deep-copied with locals/parameters renamed fresh per
call site; statement ids are preserved, so error traces still point at
the original source statements.  RAISE-style ``return`` semantics are
unaffected: a ``return`` synthesized later by the KISS instrumentation
inside an inlined body exits the *caller*, which is exactly where the
original callee's unwinding would have ended up anyway.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Set

from .ast import (
    Assign,
    AsyncCall,
    Atomic,
    Binary,
    Block,
    Call,
    Choice,
    Expr,
    Field,
    FuncDecl,
    Iter,
    Malloc,
    Program,
    Return,
    Skip,
    Stmt,
    Unary,
    Var,
    walk_exprs,
    walk_stmts,
)


def _spawned_functions(prog: Program) -> Set[str]:
    out: Set[str] = set()
    for f in prog.functions.values():
        for s in walk_stmts(f.body):
            if isinstance(s, AsyncCall):
                out.add(s.func.name)
    return out


def _address_taken_functions(prog: Program) -> Set[str]:
    """Function names used as values (anywhere but a direct call/async)."""
    out: Set[str] = set()
    fnames = set(prog.functions)
    for f in prog.functions.values():
        local_names = set(f.locals) | {p.name for p in f.params}
        for s in walk_stmts(f.body):
            exprs: List[Expr] = []
            if isinstance(s, (Call, AsyncCall)):
                exprs.extend(s.args)
                if isinstance(s, Call) and s.lhs is not None:
                    exprs.append(s.lhs)
            elif isinstance(s, Assign):
                exprs.extend([s.lhs, s.rhs])
            elif isinstance(s, Return) and s.value is not None:
                exprs.append(s.value)
            for e in exprs:
                for sub in walk_exprs(e):
                    if isinstance(sub, Var) and sub.name in fnames and sub.name not in local_names:
                        out.add(sub.name)
    return out


def _calls_in(func: FuncDecl) -> Set[str]:
    return {
        s.func.name
        for s in walk_stmts(func.body)
        if isinstance(s, (Call, AsyncCall))
    }


def _body_size(func: FuncDecl) -> int:
    return sum(1 for s in walk_stmts(func.body) if not isinstance(s, Block))


def _returns_ok(func: FuncDecl) -> bool:
    """No return statements except possibly one as the final statement;
    value-returning functions must end with an explicit return (callers
    of fall-off-the-end functions rely on the checker's default-value
    semantics, which inlining cannot reproduce with an assignment)."""
    stmts = func.body.stmts
    final = stmts[-1] if stmts else None
    for s in walk_stmts(func.body):
        if isinstance(s, Return) and s is not final:
            return False
    if func.ret is not None and not isinstance(final, Return):
        return False
    return True


class _Renamer:
    """Clone a statement tree, renaming a set of variables."""

    def __init__(self, mapping: Dict[str, str]):
        self.mapping = mapping

    def expr(self, e: Expr) -> Expr:
        if isinstance(e, Var):
            return Var(self.mapping.get(e.name, e.name))
        if isinstance(e, Unary):
            return Unary(e.op, self.expr(e.operand))
        if isinstance(e, Binary):
            return Binary(e.op, self.expr(e.left), self.expr(e.right))
        if isinstance(e, Field):
            return Field(self.expr(e.base), e.name, e.arrow)
        return e

    def stmt(self, s: Stmt) -> Stmt:
        new = copy.copy(s)
        new.sid = s.sid  # traces keep pointing at the original statement
        if isinstance(s, Assign):
            new.lhs = self.expr(s.lhs)
            new.rhs = self.expr(s.rhs)
        elif isinstance(s, Malloc):
            new.lhs = self.expr(s.lhs)
        elif isinstance(s, (Call,)):
            new.lhs = self.expr(s.lhs) if s.lhs is not None else None
            new.func = self.expr(s.func)
            new.args = [self.expr(a) for a in s.args]
        elif isinstance(s, AsyncCall):
            new.func = self.expr(s.func)
            new.args = [self.expr(a) for a in s.args]
        elif isinstance(s, Return):
            new.value = self.expr(s.value) if s.value is not None else None
        elif isinstance(s, Block):
            new.stmts = [self.stmt(x) for x in s.stmts]
        elif isinstance(s, Atomic):
            new.body = self.stmt(s.body)
        elif isinstance(s, Choice):
            new.branches = [self.stmt(b) for b in s.branches]
        elif isinstance(s, Iter):
            new.body = self.stmt(s.body)
        elif hasattr(s, "cond"):
            new.cond = self.expr(s.cond)
        return new


class Inliner:
    """The inlining pass; see the module docstring for the eligibility rules."""
    def __init__(self, prog: Program, max_stmts: int = 12):
        self.prog = prog
        self.max_stmts = max_stmts
        self._fresh = 0
        self.inlined_calls = 0

    def _inlinable(self) -> Set[str]:
        spawned = _spawned_functions(self.prog)
        taken = _address_taken_functions(self.prog)
        out: Set[str] = set()
        for name, f in self.prog.functions.items():
            if name == self.prog.entry or name in spawned or name in taken:
                continue
            if not _returns_ok(f) or _body_size(f) > self.max_stmts:
                continue
            if name in _calls_in(f):
                continue  # direct recursion
            out.add(name)
        return out

    def run(self) -> Program:
        """Inline in place (call on a clone if the original must survive)."""
        candidates = self._inlinable()
        # bottom-up: repeat until no eligible call sites remain (bounded
        # by the call-graph depth; mutual recursion among candidates is
        # broken by the no-progress check)
        for _ in range(len(self.prog.functions) + 1):
            changed = False
            for func in self.prog.functions.values():
                changed |= self._inline_in(func, candidates)
            if not changed:
                break
        return self.prog

    def _inline_in(self, func: FuncDecl, candidates: Set[str]) -> bool:
        local_names = set(func.locals) | {p.name for p in func.params}
        changed = self._inline_block(func, func.body, candidates, local_names)
        return changed

    def _inline_block(self, func: FuncDecl, block: Block, candidates: Set[str], local_names: Set[str]) -> bool:
        changed = False
        out: List[Stmt] = []
        for s in block.stmts:
            if isinstance(s, (Choice,)):
                for b in s.branches:
                    changed |= self._inline_block(func, b, candidates, local_names)
                out.append(s)
                continue
            if isinstance(s, Iter):
                changed |= self._inline_block(func, s.body, candidates, local_names)
                out.append(s)
                continue
            if isinstance(s, Block):
                changed |= self._inline_block(func, s, candidates, local_names)
                out.append(s)
                continue
            if (
                isinstance(s, Call)
                and s.func.name in candidates
                and s.func.name not in local_names
                # a callee inlining into itself is excluded by _inlinable,
                # but mutual candidates could ping-pong; only inline calls
                # to *other* functions
                and s.func.name != func.name
            ):
                out.extend(self._expand(func, s))
                self.inlined_calls += 1
                changed = True
                continue
            out.append(s)
        block.stmts = out
        return changed

    def _expand(self, caller: FuncDecl, call: Call) -> List[Stmt]:
        callee = self.prog.function(call.func.name)
        mapping: Dict[str, str] = {}
        for name in list(callee.locals) + [p.name for p in callee.params]:
            self._fresh += 1
            fresh = f"__inl{self._fresh}_{name}"
            mapping[name] = fresh
        for p in callee.params:
            caller.locals[mapping[p.name]] = p.type
        for lname, ltype in callee.locals.items():
            caller.locals[mapping[lname]] = ltype

        renamer = _Renamer(mapping)
        out: List[Stmt] = []
        for p, a in zip(callee.params, call.args):
            bind = Assign(Var(mapping[p.name]), a)
            bind.sid = call.sid
            out.append(bind)
        body = [renamer.stmt(s) for s in callee.body.stmts]
        ret_value: Optional[Expr] = None
        if body and isinstance(body[-1], Return):
            ret = body.pop()
            ret_value = ret.value
        out.extend(body)
        if call.lhs is not None:
            # _inlinable guarantees value-returning candidates end with an
            # explicit return, so ret_value is present here
            assign = Assign(call.lhs, ret_value)
            assign.sid = call.sid
            out.append(assign)
        return out


def inline_program(prog: Program, max_stmts: int = 12) -> Program:
    """Inline small leaf functions in place; returns the same object."""
    from repro import obs

    with obs.span("inline"):
        return Inliner(prog, max_stmts=max_stmts).run()
