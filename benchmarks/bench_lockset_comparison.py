"""Ablation: KISS vs. the static lockset baseline (§6.1 / §7).

The paper's "flexibility in implementation" discussion: most existing
race detectors are lockset-based and only understand plain locks; KISS
handles events, interlocked operations, and arbitrary flag protocols
because it explores semantics, not locking discipline.

Workloads: one lock-disciplined kernel (both tools agree), plus three
kernels synchronized by other mechanisms where the lockset baseline
reports spurious races and KISS proves race-freedom — and the bluetooth
stoppingFlag field where both correctly report a race.
"""

import pytest

from repro.analysis.lockset import lockset_check
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers import DEVICE_EXTENSION, bluetooth_program
from repro.drivers.osmodel import OS_MODEL_SRC
from repro.lang import parse_core
from repro.reporting import render_table


def _case_lock():
    src = OS_MODEL_SRC + """
    int SpinLock; int g;
    void worker() { KeAcquireSpinLock(&SpinLock); g = g + 1; KeReleaseSpinLock(&SpinLock); }
    void main() { async worker(); KeAcquireSpinLock(&SpinLock); g = g + 1; KeReleaseSpinLock(&SpinLock); }
    """
    return "spinlock discipline", src, RaceTarget.global_var("g"), "g", "no-race"


def _case_event():
    src = OS_MODEL_SRC + """
    bool ready; int data; int out;
    void producer() { data = 7; KeSetEvent(&ready); }
    void main() { async producer(); KeWaitForSingleObject(&ready); out = data; }
    """
    return "event ordering", src, RaceTarget.global_var("data"), "data", "no-race"


def _case_interlocked():
    src = OS_MODEL_SRC + """
    int count; int winner_work;
    void worker() { int n; n = InterlockedIncrement(&count); if (n == 1) { winner_work = 1; } }
    void main() { async worker(); int n; n = InterlockedIncrement(&count); if (n == 1) { winner_work = 2; } }
    """
    return "interlocked election", src, RaceTarget.global_var("winner_work"), "winner_work", "no-race"


def _case_unprotected():
    src = OS_MODEL_SRC + """
    int SpinLock; int g;
    void worker() { g = 2; }
    void main() { async worker(); KeAcquireSpinLock(&SpinLock); g = 1; KeReleaseSpinLock(&SpinLock); }
    """
    return "missing lock (real race)", src, RaceTarget.global_var("g"), "g", "race"


def _run():
    rows = []
    ok = True
    for name, src, target, loc, truth in (
        _case_lock(),
        _case_event(),
        _case_interlocked(),
        _case_unprotected(),
    ):
        lockset = lockset_check(parse_core(src))
        ls = "race" if lockset.warned(loc) else "no-race"
        kiss = Kiss(max_ts=1).check_race(parse_core(src), target)
        kv = "race" if kiss.is_race else ("no-race" if kiss.is_safe else kiss.verdict)
        rows.append([name, truth, ls, kv])
        ok = ok and kv == truth  # KISS must match ground truth everywhere

    # bluetooth stoppingFlag: both report (lockset for the right reason
    # here — there are no locks at all)
    bt = bluetooth_program()
    ls = "race" if lockset_check(bt).warned(f"{DEVICE_EXTENSION}.stoppingFlag") else "no-race"
    kiss = Kiss(max_ts=0).check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    rows.append(["bluetooth stoppingFlag", "race", ls, "race" if kiss.is_race else kiss.verdict])
    ok = ok and kiss.is_race

    print()
    print(
        render_table(
            ["synchronization", "ground truth", "lockset baseline", "KISS"],
            rows,
            title="§6.1 flexibility: lockset baseline vs KISS",
        )
    )
    false_alarms = sum(1 for r in rows if r[2] == "race" and r[1] == "no-race")
    print(f"lockset false alarms on non-lock synchronization: {false_alarms}/3")
    return ok and false_alarms >= 2


def bench_lockset_comparison(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "KISS diverged from ground truth, or the lockset baseline did not show its blind spot"
