"""Experiment E8 — ablation of the alias-analysis pruning (§5):
"We use a static alias analysis to optimize away most of the calls to
check_r and check_w."

For each field of the Bluetooth device extension and for a mid-size
corpus driver, we compare the number of emitted checks and the
explored-state count with pruning on vs. off.
"""

import time

import pytest

from repro.core.race import RaceTarget, RaceTransformer
from repro.drivers import DEVICE_EXTENSION, bluetooth_program, spec_by_name
from repro.drivers.generator import generate_driver
from repro.lang.lower import clone_program
from repro.cfg.build import build_program_cfg
from repro.seqcheck.explicit import SequentialChecker
from repro.reporting import render_table


def _measure(prog, struct, field, use_alias):
    t = RaceTransformer(
        RaceTarget.field_of(struct, field), max_ts=0, use_alias_analysis=use_alias
    )
    t0 = time.perf_counter()
    out = t.transform(prog)
    pcfg = build_program_cfg(out)
    result = SequentialChecker(pcfg, max_states=300_000).check()
    dt = time.perf_counter() - t0
    return t.checks_emitted, result.stats.states, dt, result


def _run():
    rows = []
    total_pruned_states = 0
    total_full_states = 0
    cases = [(bluetooth_program(), DEVICE_EXTENSION, f) for f in
             ("pendingIo", "stoppingFlag", "stoppingEvent")]
    gameenum = generate_driver(spec_by_name("imca"), loc_scale=0)
    cases += [(gameenum, "DEVICE_EXTENSION", "RacyState0"),
              (gameenum, "DEVICE_EXTENSION", "Counter0")]
    agree = True
    for prog, struct, field in cases:
        em_on, st_on, t_on, r_on = _measure(prog, struct, field, True)
        em_off, st_off, t_off, r_off = _measure(prog, struct, field, False)
        agree = agree and (r_on.status == r_off.status)
        total_pruned_states += st_on
        total_full_states += st_off
        rows.append(
            [f"{struct}.{field}", em_on, em_off, st_on, st_off, f"{t_on:.2f}s", f"{t_off:.2f}s"]
        )
    print()
    print(
        render_table(
            ["target", "checks (pruned)", "checks (all)", "states (pruned)", "states (all)",
             "time (pruned)", "time (all)"],
            rows,
            title="E8: alias-analysis pruning ablation",
        )
    )
    print(f"state reduction: {total_full_states / max(1, total_pruned_states):.2f}x")
    return agree and total_pruned_states <= total_full_states


def bench_alias_ablation(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "pruning changed verdicts or increased cost"
