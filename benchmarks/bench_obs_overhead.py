"""Experiment E13 — the observability layer costs nothing when off.

The instrumentation points throughout the pipeline (``obs.span`` /
``obs.inc``) delegate to a process-local current recorder, which is a
no-op :class:`~repro.obs.NullRecorder` unless a run opts in.  The
claim enforced here: the *disabled* cost is under 5% of the
``bench_table1`` smoke workload (a small driver subset through the
campaign engine, the paper's Table 1 shape).

Differencing two timings of the workload would make that a coin flip —
5% is inside the run-to-run noise of a multi-second Python workload.
Instead the overhead is measured directly:

1. run the workload once under a hook-counting recorder, so we know
   exactly how many span and counter hooks the workload fires;
2. time that many *null* hook calls in a tight loop (the disabled-path
   cost is deterministic: one attribute lookup and one no-op call);
3. overhead = (hooks fired x null hook cost) / workload wall clock.

Usage::

    pytest benchmarks/bench_obs_overhead.py          # via pytest-benchmark
    python benchmarks/bench_obs_overhead.py --smoke --out BENCH_obs_overhead.json
"""

import argparse
import json
import sys
import time

from repro import obs
from repro.campaign import CampaignConfig, run_corpus_campaign
from repro.drivers import DRIVER_SPECS

#: The bench_table1 smoke configuration: the smallest corpus drivers.
SMOKE_DRIVERS = ["tracedrv", "moufiltr", "imca"]

#: The enforced bound on disabled-instrumentation overhead.
THRESHOLD = 0.05


class _HookCountingRecorder(obs.Recorder):
    """A real recorder that additionally counts ``inc`` hook calls
    (span hooks are already countable from the event stream)."""

    def __init__(self):
        super().__init__()
        self.inc_calls = 0

    def inc(self, name, n=1):
        self.inc_calls += 1
        super().inc(name, n)


def _workload(drivers):
    specs = [s for s in DRIVER_SPECS if s.name in drivers]
    assert specs, f"no corpus drivers matched {drivers}"
    run_corpus_campaign(specs, CampaignConfig(jobs=1, cache_dir=None))


def _time_null_hooks(n):
    """Seconds for ``n`` disabled span hooks plus ``n`` disabled counter
    hooks (the exact code path instrumentation points take when off)."""
    assert not obs.current().enabled, "null-hook timing needs observability off"
    span, inc = obs.span, obs.inc
    t0 = time.perf_counter()
    for _ in range(n):
        with span("overhead-probe"):
            pass
        inc("overhead-probe")
    return time.perf_counter() - t0


def _measure(drivers):
    _workload(drivers)  # warm-up: parse memos, imports, allocator

    t0 = time.perf_counter()
    _workload(drivers)
    t_work = time.perf_counter() - t0

    rec = _HookCountingRecorder()
    with obs.observing(rec):
        _workload(drivers)
    spans = sum(1 for e in rec.events if e["event"] == "span_start")
    incs = rec.inc_calls
    hooks = spans + incs

    n_probe = 200_000
    per_hook_pair = _time_null_hooks(n_probe) / n_probe
    hook_cost = max(spans, incs) * per_hook_pair  # pairs cover both streams
    overhead = hook_cost / t_work if t_work > 0 else 0.0

    return {
        "schema": "kiss-bench/obs-overhead/1",
        "workload": "bench_table1 smoke (campaign engine, jobs=1, no cache)",
        "drivers": list(drivers),
        "workload_wall_s": round(t_work, 4),
        "hooks": {"spans": spans, "counter_incs": incs, "total": hooks},
        "null_hook_pair_cost_s": per_hook_pair,
        "disabled_hook_cost_s": round(hook_cost, 6),
        "disabled_overhead": round(overhead, 6),
        "threshold": THRESHOLD,
        "ok": overhead < THRESHOLD,
    }


def _run():
    doc = _measure(SMOKE_DRIVERS)
    print()
    print(json.dumps(doc, indent=2))
    return doc


def bench_obs_overhead(benchmark):
    doc = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert doc["hooks"]["total"] > 0, "instrumented workload fired no hooks"
    assert doc["ok"], (
        f"disabled observability overhead {doc['disabled_overhead']:.4%} "
        f"exceeds the {THRESHOLD:.0%} bound"
    )


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--smoke", action="store_true",
                   help="use the smoke driver subset (also the default)")
    p.add_argument("--drivers", metavar="NAMES",
                   help="comma-separated corpus driver names to use as the workload")
    p.add_argument("--out", metavar="PATH",
                   help="write the measurement document as JSON to PATH")
    args = p.parse_args(argv)
    drivers = args.drivers.split(",") if args.drivers else SMOKE_DRIVERS
    doc = _measure(drivers)
    print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
