"""Experiment E6 — the introduction's complexity claim.

"The set of all reachable control states grows exponentially with the
number of threads", while KISS analyzes a sequential program whose extra
state is a small constant (``raise`` plus the bounded ``ts``).

The workload: n worker threads performing a non-atomic read-modify-write
on one shared counter (the classic lost-update kernel) — shared state
defeats the interleaving checker's state merging.  KISS runs in the
paper's practical configuration, a *fixed* ``ts`` bound (0 and 1): its
cost stays near-flat in n because the bounded scheduler simulates a fixed
slice of the interleavings, while the concurrent checker must represent
every reachable control-state combination.

(Sweeping ``ts`` *with* n instead trades this cost back for coverage —
that axis is measured by E7, ``bench_ts_sweep``.)
"""

import pytest

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.lang import parse_core
from repro.reporting import render_table

BUDGET = 1_000_000


def family(n: int) -> str:
    """n threads doing an unprotected read-modify-write of shared g."""
    workers = "\n".join(
        f"void worker{i}() {{ int t; t = g; t = t + 1; g = t; }}" for i in range(n)
    )
    spawns = " ".join(f"async worker{i}();" for i in range(n))
    return f"int g;\n{workers}\nvoid main() {{ {spawns} }}"


def _run(max_n: int = 5):
    rows = []
    prev = {}
    for n in range(1, max_n + 1):
        src = family(n)
        con = check_concurrent(parse_core(src), max_states=BUDGET)
        c = con.stats.states if not con.exhausted else BUDGET
        row = [n, f"{c}{'+' if con.exhausted else ''}"]
        growth = f"{c / prev['con']:.1f}x" if prev.get("con") else "-"
        row.append(growth)
        for bound in (0, 1):
            r = Kiss(max_ts=bound, max_states=BUDGET, map_traces=False).check_assertions(
                parse_core(src)
            )
            k = r.backend_result.stats.states
            kg = f"{k / prev[f'k{bound}']:.1f}x" if prev.get(f"k{bound}") else "-"
            row += [k, kg]
            prev[f"k{bound}"] = k
        prev["con"] = c
        rows.append(row)
    print()
    print(
        render_table(
            ["threads", "interleaving", "growth", "KISS ts=0", "growth", "KISS ts=1", "growth"],
            rows,
            title="E6: state counts, full interleaving vs KISS at the paper's ts bounds",
        )
    )
    # the claim: at the largest n, the interleaving growth factor strictly
    # dominates both KISS growth factors
    last = rows[-1]
    con_growth = float(last[2].rstrip("x"))
    kiss_growths = [float(last[4].rstrip("x")), float(last[6].rstrip("x"))]
    return con_growth > max(kiss_growths)


def bench_scalability(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "interleaving exploration did not outgrow KISS at fixed ts"
