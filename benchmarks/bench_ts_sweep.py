"""Experiment E7 — the ``ts`` bound as a coverage/cost tuning knob (§4):
"Increasing the size of ts increases the number of simulated behaviors
at the cost of increasing the global state space."

A family of bugs needing deeper scheduling: bug ``k`` requires ``k``
parked threads to fire in a chained order after the parent progresses.
We sweep ``max_ts`` and report, for each (bug, bound): found/missed and
the explored-state count — coverage grows with the bound, and so does
cost.
"""

import pytest

from repro.core.checker import Kiss
from repro.lang import parse_core
from repro.reporting import render_table


def chained_bug(k: int) -> str:
    """The assertion fires only if k forked threads run, in dependency
    order, after main has advanced the phase — needing |ts| >= k."""
    workers = []
    for i in range(1, k + 1):
        workers.append(
            f"void w{i}() {{ assume(phase == {i}); phase = {i + 1}; }}"
        )
    spawns = " ".join(f"async w{i}();" for i in range(1, k + 1))
    return (
        "int phase;\n"
        + "\n".join(workers)
        + "\nvoid main() { "
        + spawns
        + f" phase = 1; assume(phase == {k + 1}); assert(false); }}"
    )


def _run(max_k: int = 3, max_bound: int = 3):
    rows = []
    coverage_monotone = True
    for k in range(1, max_k + 1):
        src = chained_bug(k)
        row = [f"bug needs {k} parked"]
        prev_found = False
        for bound in range(0, max_bound + 1):
            r = Kiss(max_ts=bound, max_states=500_000, map_traces=False).check_assertions(
                parse_core(src)
            )
            found = r.is_error
            if prev_found and not found:
                coverage_monotone = False
            prev_found = prev_found or found
            row.append(f"{'FOUND' if found else 'miss'}/{r.backend_result.stats.states}")
        rows.append(row)
    print()
    print(
        render_table(
            ["workload"] + [f"ts={b} (verdict/states)" for b in range(0, max_bound + 1)],
            rows,
            title="E7: coverage and cost as the ts bound grows",
        )
    )
    # each bug k must be missed below bound k and found from bound k on
    thresholds_ok = all(
        ("miss" in rows[k - 1][1 + b]) == (b < k)
        for k in range(1, max_k + 1)
        for b in range(0, max_bound + 1)
    )
    return coverage_monotone and thresholds_ok


def bench_ts_sweep(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "coverage did not grow monotonically with the ts bound"
