"""Experiment E2 — Table 2: the refined harness (rules A1–A3 plus the
kbfiltr/moufiltr serialized-Ioctl rule) re-checks the fields that raced
under the permissive harness.  The paper's headline: 71 reported races
drop to 30.

Set ``KISS_FULL_CORPUS=1`` for the full 18-driver sweep.
"""

import os

import pytest

from repro.drivers import DRIVER_SPECS, PAPER_TABLE2, check_driver, run_table2
from repro.reporting import agreement_note, render_table

SUBSET = [
    "moufiltr",
    "kbfiltr",
    "imca",
    "toaster/toastmon",
    "diskperf",
    "1394diag",
    "1394vdev",
    "fakemodem",
    "gameenum",
    "toaster/func",
    "mouclass",
]


def _specs():
    if os.environ.get("KISS_FULL_CORPUS"):
        return DRIVER_SPECS
    return [s for s in DRIVER_SPECS if s.name in SUBSET]


def _run_table2():
    specs = _specs()
    table1 = [check_driver(s) for s in specs]
    table2 = run_table2(table1, specs=specs)
    by_name = {r.name: r for r in table2}
    rows = []
    matches = 0
    for spec in specs:
        if spec.name not in PAPER_TABLE2:
            continue
        measured = by_name[spec.name].races if spec.name in by_name else 0
        expected = PAPER_TABLE2[spec.name]
        ok = measured == expected
        matches += ok
        rows.append([spec.name, expected, measured, "ok" if ok else "DIFF"])
    total_row = ["Total", sum(r[1] for r in rows), sum(r[2] for r in rows), ""]
    rows.append(total_row)
    print()
    print(
        render_table(
            ["Driver", "Races(paper)", "Races(ours)", ""],
            rows,
            title="Table 2: races remaining under the refined harness",
        )
    )
    checked = len([s for s in specs if s.name in PAPER_TABLE2])
    print(agreement_note(matches, checked, "Table 2"))
    return matches, checked


def bench_table2(benchmark):
    matches, total = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    assert matches == total, "Table 2 rows diverge from the paper"
