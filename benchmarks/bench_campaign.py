"""Experiment: the campaign engine — serial vs. parallel wall clock over
the driver corpus, and the cache-warm speedup.

Three sweeps over the same job matrix (a fast driver subset by default;
``KISS_FULL_CORPUS=1`` sweeps all 18 drivers):

1. serial, cold cache — the baseline per-field loop;
2. parallel (``KISS_JOBS`` workers, default CPU count), cold cache;
3. serial, warm cache — a re-run against the results of sweep 1.

Asserts that all three produce identical per-field verdicts and that the
warm run skips >= 90% of jobs via the content-addressed cache, then
prints the measurements as JSON (consumed by EXPERIMENTS.md).
"""

import json
import os
import tempfile
import time

from repro.campaign import CampaignConfig, default_jobs, run_corpus_campaign
from repro.drivers import DRIVER_SPECS

SUBSET = ["tracedrv", "moufiltr", "imca", "startio", "toaster/toastmon", "diskperf"]


def _specs():
    if os.environ.get("KISS_FULL_CORPUS"):
        return DRIVER_SPECS
    return [s for s in DRIVER_SPECS if s.name in SUBSET]


def _sweep(specs, jobs, cache_dir):
    t0 = time.monotonic()
    _, results, scheduler = run_corpus_campaign(
        specs, CampaignConfig(jobs=jobs, cache_dir=cache_dir)
    )
    wall = time.monotonic() - t0
    verdicts = {r.job_id: r.table_verdict for r in results}
    hits = sum(1 for r in results if r.cache_hit)
    return wall, verdicts, hits, len(results), scheduler.summary(results)


def _run_campaign_bench():
    specs = _specs()
    workers = int(os.environ.get("KISS_JOBS", "0")) or default_jobs()
    with tempfile.TemporaryDirectory() as d:
        serial_dir = os.path.join(d, "serial")
        parallel_dir = os.path.join(d, "parallel")
        serial_s, v_serial, _, total, _ = _sweep(specs, 1, serial_dir)
        parallel_s, v_parallel, _, _, _ = _sweep(specs, workers, parallel_dir)
        warm_s, v_warm, warm_hits, _, warm_summary = _sweep(specs, 1, serial_dir)

    assert v_parallel == v_serial, "parallel verdicts diverge from the serial loop"
    assert v_warm == v_serial, "cache-warm verdicts diverge from the serial loop"
    skip_rate = warm_hits / total
    print()
    print(warm_summary)
    report = {
        "drivers": len(specs),
        "jobs_total": total,
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_speedup": round(serial_s / warm_s, 3),
        "warm_skip_rate": round(skip_rate, 3),
    }
    print(json.dumps(report))
    return skip_rate


def bench_campaign(benchmark):
    skip_rate = benchmark.pedantic(_run_campaign_bench, rounds=1, iterations=1)
    assert skip_rate >= 0.9, f"cache-warm run skipped only {skip_rate:.0%} of jobs"
