"""Experiments E3/E4 — the Bluetooth driver walkthroughs of §2.2, §2.3
and §6:

* the ``stoppingFlag`` race is exposed with ``ts`` bound 0 (§2.2);
* the reference-counting assertion violation is missed at bound 0 and
  found at bound 1 (§2.3);
* after the fix suggested by the driver quality team, KISS reports no
  errors (§6);
* fakemodem's reference counting (already the fixed pattern) is clean.
"""

import pytest

from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers import (
    DEVICE_EXTENSION,
    bluetooth_fixed_program,
    bluetooth_program,
    fakemodem_refcount_program,
)
from repro.reporting import render_table


def _run():
    rows = []

    race = Kiss(max_ts=0).check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    rows.append(["§2.2 stoppingFlag race, ts=0", "race", race.error_kind or race.verdict])

    miss = Kiss(max_ts=0).check_assertions(bluetooth_program())
    rows.append(["§2.3 stopped assertion, ts=0", "safe (missed)", miss.verdict])

    found = Kiss(max_ts=1).check_assertions(bluetooth_program())
    rows.append(["§2.3 stopped assertion, ts=1", "assertion", found.error_kind or found.verdict])

    fixed = Kiss(max_ts=1).check_assertions(bluetooth_fixed_program())
    rows.append(["§6 fixed driver, ts=1", "safe", fixed.verdict])

    fake = Kiss(max_ts=1).check_assertions(fakemodem_refcount_program())
    rows.append(["§6 fakemodem refcount, ts=1", "safe", fake.verdict])

    print()
    print(render_table(["Experiment", "Paper", "Ours"], rows, title="Bluetooth / fakemodem walkthroughs"))
    ok = (
        race.is_race
        and miss.is_safe
        and found.is_error
        and found.error_kind == "assertion"
        and fixed.is_safe
        and fake.is_safe
    )
    if found.concurrent_trace is not None:
        print("\nMapped concurrent error trace for the ts=1 assertion violation:")
        print(found.concurrent_trace.format())
    return ok


def bench_bluetooth(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "Bluetooth walkthrough outcomes diverge from the paper"
