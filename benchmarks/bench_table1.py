"""Experiment E1 — Table 1: per-field race checking over the driver corpus
with the permissive harness and ts bound 0.

Prints the Table 1 rows (Driver, KLOC, Fields, Races, No Races) with the
paper's numbers alongside the measured ones.

By default a representative subset of drivers runs (the full 18-driver /
481-field sweep takes tens of minutes single-threaded); set
``KISS_FULL_CORPUS=1`` to run everything, as done for EXPERIMENTS.md.

The per-field job matrix runs through the campaign engine
(:mod:`repro.campaign`); ``KISS_JOBS=N`` fans it out over N worker
processes (default: CPU count).
"""

import os

import pytest

from repro.campaign import CampaignConfig, default_jobs, run_corpus_campaign
from repro.drivers import DRIVER_SPECS, PAPER_TABLE1, generate_source
from repro.reporting import agreement_note, render_table

# Default: every driver except the four largest (those push the sweep past
# ten minutes single-threaded); KISS_FULL_CORPUS=1 runs all 18.
SUBSET = [
    "tracedrv",
    "moufiltr",
    "kbfiltr",
    "imca",
    "startio",
    "toaster/toastmon",
    "diskperf",
    "1394diag",
    "1394vdev",
    "fakemodem",
    "gameenum",
    "toaster/bus",
    "toaster/func",
    "mouclass",
]


def _specs():
    if os.environ.get("KISS_FULL_CORPUS"):
        return DRIVER_SPECS
    return [s for s in DRIVER_SPECS if s.name in SUBSET]


def _run_table1():
    rows = []
    matches = 0
    specs = _specs()
    jobs = int(os.environ.get("KISS_JOBS", "0")) or default_jobs()
    runs, _, _ = run_corpus_campaign(specs, CampaignConfig(jobs=jobs))
    by_name = {r.name: r for r in runs}
    for spec in specs:
        r = by_name[spec.name]
        kloc, fields, p_races, p_noraces = PAPER_TABLE1[spec.name]
        # model size: the full generated source including the KLOC-scaled
        # (uncalled) filler; checking omits the filler, same verdicts
        model_loc = len(generate_source(spec).splitlines())
        ok = (r.races, r.no_races) == (p_races, p_noraces)
        matches += ok
        rows.append(
            [spec.name, kloc, round(model_loc / 1000, 2), fields, p_races, r.races,
             p_noraces, r.no_races, r.unresolved, "ok" if ok else "DIFF"]
        )
    totals = [
        "Total",
        round(sum(r[1] for r in rows), 1),
        round(sum(r[2] for r in rows), 1),
        sum(r[3] for r in rows),
        sum(r[4] for r in rows),
        sum(r[5] for r in rows),
        sum(r[6] for r in rows),
        sum(r[7] for r in rows),
        sum(r[8] for r in rows),
        "",
    ]
    rows.append(totals)
    print()
    print(
        render_table(
            ["Driver", "KLOC(paper)", "KLOC(model)", "Fields", "Races(paper)", "Races(ours)",
             "NoRaces(paper)", "NoRaces(ours)", "Unresolved", ""],
            rows,
            title="Table 1: race detection with the permissive harness (ts = 0)",
        )
    )
    print(agreement_note(matches, len(specs), "Table 1"))
    return matches, len(specs)


def bench_table1(benchmark):
    matches, total = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    assert matches == total, "Table 1 rows diverge from the paper"
