"""Ablation of this reproduction's own engineering choices (DESIGN.md §5):

* *canonical freezing with heap GC* makes allocate/call-in-a-loop
  programs finite-state (demonstrated by a budget comparison, since it
  cannot be disabled without losing termination);
* *deterministic-chain compression* in the sequential checker;
* *invisible-transition compression* in the concurrent checker.

Each reduction must preserve verdicts while shrinking explored states.
"""

import time

import pytest

from repro.cfg.build import build_program_cfg
from repro.concheck.interleave import ConcurrentChecker
from repro.lang import parse_core
from repro.seqcheck.explicit import SequentialChecker
from repro.reporting import render_table

SEQ_WORKLOAD = """
struct S { int a; }
int total;
int step(int x) { int y; y = x * 2; y = y - x; return y; }
void main() {
  int i; int v;
  iter {
    S *p;
    p = malloc(S);
    p->a = 1;
    v = step(i);
    total = total + v;
    assume(total < 5);
  }
  assert(total < 5);
}
"""

CON_WORKLOAD = """
int g;
void worker() { int a; int b; a = 1; b = a + 1; a = b * 2; g = a; }
void main() { int a; int b; async worker(); a = 2; b = a + 3; g = b; assert(g > 0); }
"""


def _run():
    rows = []
    ok = True

    prog = parse_core(SEQ_WORKLOAD)
    pcfg = build_program_cfg(prog)
    for compress in (False, True):
        t0 = time.perf_counter()
        r = SequentialChecker(pcfg, max_states=100_000, compress_chains=compress).check()
        rows.append(
            [f"sequential, chain compression {'on' if compress else 'off'}",
             str(r.status), r.stats.states, f"{time.perf_counter() - t0:.2f}s"]
        )
    ok &= rows[0][1] == rows[1][1] and rows[1][2] <= rows[0][2]

    prog2 = parse_core(CON_WORKLOAD)
    pcfg2 = build_program_cfg(prog2)
    base = len(rows)
    for compress in (False, True):
        t0 = time.perf_counter()
        r = ConcurrentChecker(pcfg2, max_states=200_000, compress_invisible=compress).check()
        rows.append(
            [f"concurrent, invisible compression {'on' if compress else 'off'}",
             str(r.status), r.stats.states, f"{time.perf_counter() - t0:.2f}s"]
        )
    ok &= rows[base][1] == rows[base + 1][1] and rows[base + 1][2] <= rows[base][2]

    print()
    print(
        render_table(
            ["configuration", "verdict", "states", "time"],
            rows,
            title="Ablation: state-space reductions (verdict-preserving)",
        )
    )
    print("note: canonical-freeze GC cannot be ablated — without it the "
          "malloc-in-loop workload above has an unbounded state space.")
    return ok


def bench_reductions(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "a reduction changed a verdict or increased the state count"
