"""Experiment E10 — sequential backends on KISS output.

The paper's §4 complexity argument: the instrumented program adds a
small constant number of globals, so a summary-based boolean-program
checker (Bebop) pays ``O(|C|·2^(g+l))`` — about the cost of checking a
sequential program of the same size.  We compare the two backends of
this reproduction on scalar programs:

* the explicit-state checker (used for the driver corpus), and
* the SLAM-lite CEGAR stack (predicate abstraction + Bebop), whose cost
  is property-dependent — including a diverging case.

Verdicts must agree wherever both backends terminate.
"""

import time

import pytest

from repro.lang import parse_core
from repro.seqcheck.cegar import check_cegar
from repro.seqcheck.explicit import check_sequential
from repro.reporting import render_table

CASES = {
    "straightline-safe": """
        int a; int b;
        void main() { a = 4; b = a + 3; assert(b == 7); }
    """,
    "branching-bug": """
        int x; int y;
        void main() {
          x = 0 - 3;
          if (x > 0) { y = 1; } else { y = 2; }
          assert(y == 1);
        }
    """,
    "loop-invariant": """
        int g; bool done;
        void main() {
          g = 0;
          iter { assume(g < 3); g = g + 1; }
          assume(g == 3);
          assert(g == 3);
        }
    """,
    "diverging-parity": """
        int g;
        void main() { g = 0; iter { g = g + 2; } assert(g != 25); }
    """,
}


def _run():
    rows = []
    ok = True
    for name, src in CASES.items():
        t0 = time.perf_counter()
        explicit = check_sequential(parse_core(src), max_states=50_000)
        t_exp = time.perf_counter() - t0
        t0 = time.perf_counter()
        cegar = check_cegar(parse_core(src), max_rounds=6)
        t_ceg = time.perf_counter() - t0
        e_verdict = str(explicit.status)
        c_verdict = cegar.status
        if e_verdict in ("safe", "error") and c_verdict in ("safe", "error"):
            ok = ok and (e_verdict == c_verdict)
        rows.append(
            [name, e_verdict, f"{t_exp:.2f}s", explicit.stats.states,
             c_verdict, f"{t_ceg:.2f}s", cegar.rounds, cegar.predicates]
        )
    print()
    print(
        render_table(
            ["program", "explicit", "time", "states", "cegar", "time", "rounds", "preds"],
            rows,
            title="E10: explicit-state backend vs SLAM-lite CEGAR backend",
        )
    )
    # the diverging case must actually diverge in CEGAR (property-dependent
    # cost, the mechanism behind the paper's resource-bound rows) while the
    # explicit checker also fails to converge (unbounded counter)
    diverged = rows[-1][4] == "diverged"
    return ok and diverged


def bench_backends(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "backend verdicts disagree or divergence not reproduced"
