"""Experiment E15 — eager vs lazy sequentialization, POR, and swarm tiling.

Four ways to check the same K-round schedule set
(``docs/SEQUENTIALIZATION.md``, ``docs/SWARM.md``), measured on the
handshake family of ``bench_rounds.py`` at each depth's first adequate
budget ``K = n + 1``:

* ``rounds`` — the eager transform (versioned copies + snapshot guesses);
* ``lazy`` — the pc-guarded lazy transform (one shared store, no guesses);
* ``lazy+por`` — lazy with shared-access POR;
* ``swarm x8`` — the lazy schedule space dealt into 8 cached tile jobs
  (``repro.campaign.swarm``), verdict aggregated.

Every mode must find every handshake error, and the swarm verdict must
match monolithic lazy (the 8-tile plan is exhaustive at these sizes).
A second workload pins the *coverage* separation: the
``increment-chain`` corpus program communicates through computed values,
so the eager transform misses it at any K while lazy finds it at K=3.

Usage::

    pytest benchmarks/bench_lazy.py                # via pytest-benchmark
    python benchmarks/bench_lazy.py --smoke --out BENCH_lazy.json
"""

import argparse
import json
import pathlib
import sys
import time

from repro.campaign import CampaignConfig, run_swarm_campaign
from repro.core.checker import Kiss
from repro.lang import parse
from repro.reporting import render_table

from bench_rounds import handshake

DEPTHS = [1, 2]
TILES = 8
SMOKE_MAX_STATES = 200_000
FULL_MAX_STATES = 2_000_000

CORPUS = pathlib.Path(__file__).resolve().parent.parent / "tests" / "fuzz_corpus"


def _check(source, strategy, rounds, max_states, por=False):
    kiss = Kiss(max_ts=1, max_states=max_states, strategy=strategy,
                rounds=rounds, por=por, map_traces=False)
    t0 = time.perf_counter()
    r = kiss.check_assertions(parse(source))
    return {
        "verdict": r.verdict,
        "states": r.backend_result.stats.states,
        "wall_s": round(time.perf_counter() - t0, 4),
    }


def _swarm(source, rounds, max_states):
    t0 = time.perf_counter()
    report = run_swarm_campaign(
        source, tiles=TILES, rounds=rounds, max_states=max_states,
        campaign_config=CampaignConfig(jobs=1, cache_dir=None))
    return {
        "verdict": report.verdict,
        "states": sum(r.states for r in report.results),
        "wall_s": round(time.perf_counter() - t0, 4),
        "exhaustive": report.plan.exhaustive,
    }


def _measure(max_states):
    rows = []
    results = []
    checks_ok = True

    for n in DEPTHS:
        source = handshake(n)
        k = n + 1
        cells = {
            "rounds": _check(source, "rounds", k, max_states),
            "lazy": _check(source, "lazy", k, max_states),
            "lazy+por": _check(source, "lazy", k, max_states, por=True),
            "swarm x8": _swarm(source, k, max_states),
        }
        row = [f"handshake depth {n} (K={k})"]
        for mode, cell in cells.items():
            results.append({"workload": f"handshake-{n}", "mode": mode,
                            "budget": k, **cell})
            row.append(f"{cell['verdict']}/{cell['states']}/{cell['wall_s']:.2f}s")
        rows.append(row)
        # every mode must find the depth-n error at its adequate budget,
        # and the exhaustive 8-tile swarm must agree with monolithic lazy
        checks_ok &= all(c["verdict"] == "error" for c in cells.values())
        checks_ok &= cells["swarm x8"]["exhaustive"]
        # no state-count assertion between lazy and lazy+por: every
        # handshake statement touches a shared global, so there is
        # nothing to prune and the explicit segment-end constraint POR
        # emits costs a few driver states — the verdict parity is the
        # invariant (tests/test_por.py), the counts are just reported

    # the guess-domain separation: eager rounds misses the computed-value
    # handshake at any K, lazy finds it at K=3
    chain = (CORPUS / "increment-chain.kp").read_text()
    sep = {
        "rounds": _check(chain, "rounds", 3, max_states),
        "lazy": _check(chain, "lazy", 3, max_states),
        "lazy+por": _check(chain, "lazy", 3, max_states, por=True),
        "swarm x8": _swarm(chain, 3, max_states),
    }
    row = ["increment-chain (K=3)"]
    for mode, cell in sep.items():
        results.append({"workload": "increment-chain", "mode": mode,
                        "budget": 3, **cell})
        row.append(f"{cell['verdict']}/{cell['states']}/{cell['wall_s']:.2f}s")
    rows.append(row)
    checks_ok &= sep["rounds"]["verdict"] == "safe"
    checks_ok &= all(sep[m]["verdict"] == "error"
                     for m in ("lazy", "lazy+por", "swarm x8"))

    print()
    print(render_table(
        ["workload"] + [f"{m} (verdict/states/wall)"
                        for m in ("rounds", "lazy", "lazy+por", "swarm x8")],
        rows,
        title="E15: eager vs lazy vs POR vs swarm",
    ))

    return {
        "schema": "kiss-bench/lazy/1",
        "workload": "handshake family + increment-chain separation witness",
        "tiles": TILES,
        "max_states": max_states,
        "results": results,
        "ok": bool(checks_ok),
    }


def bench_lazy(benchmark):
    doc = benchmark.pedantic(_measure, args=(SMOKE_MAX_STATES,), rounds=1, iterations=1)
    assert doc["ok"], "lazy/swarm coverage checks violated:\n" + json.dumps(
        doc["results"], indent=2
    )


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized state budget")
    p.add_argument("--out", metavar="PATH",
                   help="write the measurement document as JSON to PATH")
    args = p.parse_args(argv)
    doc = _measure(SMOKE_MAX_STATES if args.smoke else FULL_MAX_STATES)
    print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
