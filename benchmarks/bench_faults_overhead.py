"""Experiment E16 — fault-injection hooks cost nothing when off.

The chaos fault points throughout the campaign engine
(:func:`repro.faults.fire` / :func:`repro.faults.corrupt`) consult a
process-local installed plan, which is ``None`` unless a campaign opts
in with ``--inject``.  The claim enforced here: the *disabled* cost is
under 5% of the ``bench_table1`` smoke workload (the same bound, and
the same methodology, as ``bench_obs_overhead.py``).

Differencing two timings of the workload would make that a coin flip —
5% is inside the run-to-run noise of a multi-second Python workload.
Instead the overhead is measured directly:

1. run the workload once under an *empty* fault plan, whose per-point
   hit counters record exactly how many ``fire`` and ``corrupt`` hooks
   the workload reaches;
2. time that many *disabled* hook calls in a tight loop (the off-path
   cost is deterministic: one global load and one ``is None`` test);
3. overhead = (hooks reached x disabled hook cost) / workload wall.

Usage::

    pytest benchmarks/bench_faults_overhead.py       # via pytest-benchmark
    python benchmarks/bench_faults_overhead.py --smoke --out BENCH_faults_overhead.json
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro import faults
from repro.campaign import CampaignConfig, run_corpus_campaign
from repro.drivers import DRIVER_SPECS
from repro.faults import FaultPlan

#: The bench_table1 smoke configuration: the smallest corpus drivers.
SMOKE_DRIVERS = ["tracedrv", "moufiltr", "imca"]

#: The enforced bound on disabled-hook overhead.
THRESHOLD = 0.05


def _workload(drivers):
    """The smoke campaign with a cold cache and a telemetry stream, so
    every fault point (worker, cache append, telemetry emit) is
    reached."""
    specs = [s for s in DRIVER_SPECS if s.name in drivers]
    assert specs, f"no corpus drivers matched {drivers}"
    with tempfile.TemporaryDirectory() as d:
        run_corpus_campaign(
            specs,
            CampaignConfig(
                jobs=1,
                cache_dir=os.path.join(d, "cache"),
                telemetry_path=os.path.join(d, "events.jsonl"),
            ),
        )


def _time_disabled_hooks(n):
    """Seconds for ``n`` disabled ``fire`` hooks plus ``n`` disabled
    ``corrupt`` hooks (the exact code path the fault points take when no
    plan is installed)."""
    assert faults.installed() is None, "disabled-hook timing needs injection off"
    fire, corrupt = faults.fire, faults.corrupt
    line = '{"schema": "kiss-cache/2", "key": "probe", "result": {}}\n'
    t0 = time.perf_counter()
    for _ in range(n):
        fire("mid_check")
        corrupt("cache_append", line)
    return time.perf_counter() - t0


def _measure(drivers):
    _workload(drivers)  # warm-up: parse memos, imports, allocator

    t0 = time.perf_counter()
    _workload(drivers)
    t_work = time.perf_counter() - t0

    # An empty plan injects nothing but counts every hook it is asked
    # about — the exact number of fault points the workload reaches.
    plan = FaultPlan()
    with faults.plan_context(plan):
        _workload(drivers)
    fire_hooks = sum(plan.hits.values())
    corrupt_hooks = sum(plan.write_hits.values())
    assert not plan.fired, "an empty plan must not inject"

    n_probe = 200_000
    per_hook_pair = _time_disabled_hooks(n_probe) / n_probe
    hook_cost = max(fire_hooks, corrupt_hooks) * per_hook_pair  # pairs cover both
    overhead = hook_cost / t_work if t_work > 0 else 0.0

    return {
        "schema": "kiss-bench/faults-overhead/1",
        "workload": "bench_table1 smoke (campaign engine, jobs=1, cold cache, telemetry)",
        "drivers": list(drivers),
        "workload_wall_s": round(t_work, 4),
        "hooks": {
            "fire": fire_hooks,
            "corrupt": corrupt_hooks,
            "by_point": dict(sorted(plan.hits.items())),
        },
        "disabled_hook_pair_cost_s": per_hook_pair,
        "disabled_hook_cost_s": round(hook_cost, 6),
        "disabled_overhead": round(overhead, 6),
        "threshold": THRESHOLD,
        "ok": overhead < THRESHOLD,
    }


def _run():
    doc = _measure(SMOKE_DRIVERS)
    print()
    print(json.dumps(doc, indent=2))
    return doc


def bench_faults_overhead(benchmark):
    doc = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert doc["hooks"]["fire"] > 0, "the workload reached no fault points"
    assert doc["hooks"]["corrupt"] > 0, "the workload reached no write fault points"
    assert doc["ok"], (
        f"disabled fault-hook overhead {doc['disabled_overhead']:.4%} "
        f"exceeds the {THRESHOLD:.0%} bound"
    )


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--smoke", action="store_true",
                   help="use the smoke driver subset (also the default)")
    p.add_argument("--drivers", metavar="NAMES",
                   help="comma-separated corpus driver names to use as the workload")
    p.add_argument("--out", metavar="PATH",
                   help="write the measurement document as JSON to PATH")
    args = p.parse_args(argv)
    drivers = args.drivers.split(",") if args.drivers else SMOKE_DRIVERS
    doc = _measure(drivers)
    print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
