"""Experiment E9 — Theorem 1 / §4.1 coverage characterization.

Two series over a family of 2-thread programs whose bug requires ``k``
context switches:

* the concurrent checker with context bound ``c`` finds the bug iff
  ``c >= k`` (ground truth);
* KISS (``ts = 1``) finds exactly the bugs reachable within *balanced*
  executions — for two threads, those with at most two context switches
  (the paper's §2 claim).

The printed matrix shows KISS's verdict agreeing with the 2-switch
concurrent bound and diverging from deeper bounds.
"""

import pytest

from repro.concheck import check_concurrent
from repro.core.checker import Kiss
from repro.lang import parse_core
from repro.reporting import render_table


def ping_pong(k: int) -> str:
    """The bug needs k alternations between main and the worker.

    worker advances phase on odd values; main advances it on even ones;
    the assert fires at phase 2k — reachable only with >= 2k-ish switches.
    """
    worker_steps = " ".join(
        f"assume(phase == {2 * i + 1}); phase = {2 * i + 2};" for i in range(k)
    )
    main_steps = " ".join(
        f"assume(phase == {2 * i + 2}); phase = {2 * i + 3};" for i in range(k - 1)
    )
    return (
        "int phase;\n"
        f"void worker() {{ {worker_steps} }}\n"
        "void main() { async worker(); phase = 1; "
        + main_steps
        + f" assume(phase == {2 * k}); assert(false); }}"
    )


def _run(max_k: int = 3):
    rows = []
    ok = True
    for k in range(1, max_k + 1):
        src = ping_pong(k)
        kiss = Kiss(max_ts=1, max_states=500_000, map_traces=False).check_assertions(
            parse_core(src)
        )
        row = [f"k={k}", "FOUND" if kiss.is_error else "miss"]
        for bound in (1, 2, 4, 8):
            g = check_concurrent(parse_core(src), max_states=500_000, context_bound=bound)
            row.append("FOUND" if g.is_error else "miss")
        unbounded = check_concurrent(parse_core(src), max_states=500_000)
        row.append("FOUND" if unbounded.is_error else "miss")
        rows.append(row)
        # the paper's 2-thread claim: KISS covers everything a 2-switch
        # exploration covers
        two_switch_found = row[3] == "FOUND"  # bound=2 column
        if two_switch_found and not kiss.is_error:
            ok = False
    print()
    print(
        render_table(
            ["workload", "KISS ts=1", "cb=1", "cb=2", "cb=4", "cb=8", "unbounded"],
            rows,
            title="E9: KISS coverage vs context-bounded interleaving exploration",
        )
    )
    return ok


def bench_coverage(benchmark):
    ok = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert ok, "KISS missed a bug reachable within two context switches"
