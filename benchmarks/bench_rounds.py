"""Experiment E14 — the round budget K as a coverage/cost tuning knob.

The K-round sequentialization (``docs/SEQUENTIALIZATION.md``) trades
state space for context switches the same way KISS trades it for the
``ts`` bound: a handshake protocol of depth ``n`` needs ``2n - 1``
context switches, which a round-robin schedule only exhibits from
``K = n + 1`` rounds on.  We sweep ``K`` in {1, 2, 3, 4} over the
handshake family and report, for each (depth, K): found/missed, the
explored-state count, and wall clock — coverage grows with K, and so
does cost (each extra round multiplies the versioned-global state).

Depth 1 is within KISS's two-context-switch coverage; depth 2 is the
corpus program ``tests/fuzz_corpus/three-switch.kp``, invisible to KISS.

Usage::

    pytest benchmarks/bench_rounds.py              # via pytest-benchmark
    python benchmarks/bench_rounds.py --smoke --out BENCH_rounds.json
"""

import argparse
import json
import sys
import time

from repro.core.checker import Kiss
from repro.lang import parse
from repro.reporting import render_table

ROUND_BUDGETS = [1, 2, 3, 4]
DEPTHS = [1, 2]
#: smoke keeps CI fast: cells past the first adequate budget may hit
#: this and degrade to resource-bound, which the checks accept there
SMOKE_MAX_STATES = 200_000
FULL_MAX_STATES = 2_000_000


def handshake(n: int) -> str:
    """A two-thread protocol alternating through x=1/y=1/../x=n/y=n
    before the assert: the error needs 2n-1 context switches, so a
    round-robin schedule finds it iff K >= n + 1."""
    w = " ".join(f"assume(x == {i}); y = {i};" for i in range(1, n + 1))
    m = " ".join(f"x = {i}; assume(y == {i});" for i in range(1, n + 1))
    return (
        "int x; int y;\n"
        f"void w() {{ {w} }}\n"
        f"void main() {{ async w(); {m} assert(false); }}\n"
    )


def _measure(max_states):
    depths = DEPTHS
    rows = []
    cells = {}
    for n in depths:
        prog = parse(handshake(n))
        row = [f"handshake depth {n} ({2 * n - 1} switches)"]
        for k in ROUND_BUDGETS:
            kiss = Kiss(max_ts=1, max_states=max_states, strategy="rounds",
                        rounds=k, map_traces=False)
            t0 = time.perf_counter()
            r = kiss.check_assertions(prog)
            wall = time.perf_counter() - t0
            states = r.backend_result.stats.states
            cells[(n, k)] = {
                "verdict": r.verdict,
                "states": states,
                "wall_s": round(wall, 4),
            }
            label = {"error": "FOUND", "safe": "miss", "resource-bound": "bound"}[r.verdict]
            row.append(f"{label}/{states}/{wall:.2f}s")
        rows.append(row)

    print()
    print(
        render_table(
            ["workload"] + [f"K={k} (verdict/states/wall)" for k in ROUND_BUDGETS],
            rows,
            title="E14: coverage and cost as the round budget grows",
        )
    )

    # each depth-n bug must be missed below K = n+1, found exactly there,
    # and never reported clean above it (a budget exhaustion is fine: the
    # state space keeps growing with K, that is the point of the sweep)
    def _cell_ok(n, k):
        v = cells[(n, k)]["verdict"]
        if k < n + 1:
            return v == "safe"
        if k == n + 1:
            return v == "error"
        return v in ("error", "resource-bound")

    thresholds_ok = all(_cell_ok(n, k) for n in depths for k in ROUND_BUDGETS)
    # cost must grow with K up to the first error (after it, early exit)
    cost_monotone = all(
        cells[(n, k)]["states"] <= cells[(n, k + 1)]["states"]
        for n in depths
        for k in ROUND_BUDGETS[:-1]
        if k + 1 <= n  # both bounds still miss: full exploration on both sides
    )
    return {
        "schema": "kiss-bench/rounds/1",
        "workload": "handshake protocol family (see handshake())",
        "round_budgets": ROUND_BUDGETS,
        "max_states": max_states,
        "results": [
            {"depth": n, "switches": 2 * n - 1, "budget": k, **cells[(n, k)]}
            for n in depths
            for k in ROUND_BUDGETS
        ],
        "thresholds_ok": thresholds_ok,
        "cost_monotone": cost_monotone,
        "ok": thresholds_ok and cost_monotone,
    }


def bench_rounds(benchmark):
    doc = benchmark.pedantic(_measure, args=(SMOKE_MAX_STATES,), rounds=1, iterations=1)
    assert doc["ok"], "rounds coverage/cost thresholds violated:\n" + json.dumps(
        doc["results"], indent=2
    )


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    p.add_argument("--smoke", action="store_true",
                   help="CI-sized state budget (cost cells may saturate)")
    p.add_argument("--out", metavar="PATH",
                   help="write the measurement document as JSON to PATH")
    args = p.parse_args(argv)
    doc = _measure(SMOKE_MAX_STATES if args.smoke else FULL_MAX_STATES)
    print(json.dumps(doc, indent=2))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
