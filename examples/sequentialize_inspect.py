#!/usr/bin/env python3
"""Inspect the Figure 4 transformation output.

Sequentializes a tiny concurrent program and prints the resulting
sequential program — the ``raise`` machinery, the ``ts`` slot globals,
the synthesized ``__kiss_schedule`` and ``__kiss_check`` — so you can
see exactly what the paper's translation produces before any checking
happens.

Run:  python examples/sequentialize_inspect.py
"""

from repro import parse_core
from repro.core.checker import Kiss
from repro.lang.pretty import pretty_program

SOURCE = """
int data;
bool ready;

void producer() {
    data = 42;
    ready = true;
}

void main() {
    async producer();
    assume(ready);
    assert(data == 42);
}
"""


def main() -> None:
    program = parse_core(SOURCE)
    kiss = Kiss(max_ts=1)
    sequential = kiss.sequentialize(program)

    print("// --- sequentialized program (Figure 4, max_ts = 1) ---")
    print(pretty_program(sequential))

    result = kiss.check_assertions(program)
    print(f"// checking the original program: {result.verdict}")
    cfg_nodes = len(sequential.functions)
    print(f"// transformed program has {cfg_nodes} functions, "
          f"{len(sequential.globals)} globals")


if __name__ == "__main__":
    main()
