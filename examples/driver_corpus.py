#!/usr/bin/env python3
"""Run the Table 1 / Table 2 experiment on part of the driver corpus.

Checks every device-extension field of a few drivers for races under the
permissive harness (Table 1), then re-checks the racy fields under the
refined harness with the OS concurrency rules A1–A3 (Table 2) — showing
how harness knowledge eliminates spurious reports, e.g. moufiltr's seven
races (all between two concurrent Ioctls that its position in the driver
stack actually serializes) drop to zero, while toastmon's real
DevicePnPState bug survives.

Run:  python examples/driver_corpus.py [driver ...]
"""

import sys

from repro.drivers import PAPER_TABLE1, PAPER_TABLE2, check_driver, run_table2, spec_by_name
from repro.reporting import render_table

DEFAULT = ["tracedrv", "moufiltr", "imca", "toaster/toastmon"]


def main() -> None:
    names = sys.argv[1:] or DEFAULT
    specs = [spec_by_name(n) for n in names]

    table1 = [check_driver(s) for s in specs]
    rows = []
    for spec, r in zip(specs, table1):
        kloc, fields, p_races, p_noraces = PAPER_TABLE1[spec.name]
        rows.append([spec.name, kloc, fields, f"{r.races} (paper {p_races})",
                     f"{r.no_races} (paper {p_noraces})", r.unresolved])
    print(render_table(
        ["Driver", "KLOC", "Fields", "Races", "No Races", "Unresolved"],
        rows, title="Table 1 (permissive harness, ts = 0)"))

    table2 = run_table2(table1, specs=specs)
    by_name = {r.name: r for r in table2}
    rows2 = []
    for spec in specs:
        if spec.name not in PAPER_TABLE2:
            continue
        measured = by_name[spec.name].races if spec.name in by_name else 0
        rows2.append([spec.name, f"{measured} (paper {PAPER_TABLE2[spec.name]})"])
    print()
    print(render_table(["Driver", "Races"], rows2,
                       title="Table 2 (refined harness: rules A1-A3)"))


if __name__ == "__main__":
    main()
