#!/usr/bin/env python3
"""The static-analysis toolbox around KISS.

Three analyses run over one driver-like program:

1. Steensgaard points-to — what the §5 check pruning is built on;
2. the static lockset baseline (Eraser-style) — the kind of tool the
   paper contrasts KISS against, with its characteristic false alarm on
   event-based synchronization;
3. Lipton-reduction atomicity inference — the §6.1 future-work machinery
   for recognizing benign patterns.

Run:  python examples/static_analyses.py
"""

from repro import parse_core
from repro.analysis import AtomicityAnalyzer, infer_atomicity, lockset_check
from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers.osmodel import OS_MODEL_SRC

SOURCE = OS_MODEL_SRC + """
int SpinLock;
bool dataReady;
int counter;        // consistently lock-protected
int message;        // protected by event ordering, not by a lock

void DispatchWrite(DEVICE *e) { skip; }

struct DEVICE { int unused; }

void producer() {
  KeAcquireSpinLock(&SpinLock);
  counter = counter + 1;
  KeReleaseSpinLock(&SpinLock);
  message = 42;
  KeSetEvent(&dataReady);
}

void main() {
  int got;
  async producer();
  KeAcquireSpinLock(&SpinLock);
  counter = counter + 1;
  KeReleaseSpinLock(&SpinLock);
  KeWaitForSingleObject(&dataReady);
  got = message;
}
"""


def main() -> None:
    prog = parse_core(SOURCE)

    print("=== lockset baseline ===")
    report = lockset_check(prog)
    print(f"lock functions found: {report.acquire_functions} / {report.release_functions}")
    for w in report.warnings:
        print(f"  {w}")
    if not report.warnings:
        print("  no warnings")

    print("\n=== KISS on the same locations ===")
    for loc in ("counter", "message"):
        r = Kiss(max_ts=1).check_race(parse_core(SOURCE), RaceTarget.global_var(loc))
        print(f"  {loc}: {r.verdict}"
              + ("  <- lockset false alarm refuted" if loc == "message" and r.is_safe else ""))

    print("\n=== atomicity inference (Lipton reduction) ===")
    a = AtomicityAnalyzer(prog)
    for fn in ("KeAcquireSpinLock", "KeReleaseSpinLock", "InterlockedIncrement", "producer", "main"):
        print(f"  {fn:25s} mover={a.proc_mover(fn)}  atomic={a.is_atomic(fn)}")


if __name__ == "__main__":
    main()
