#!/usr/bin/env python3
"""The paper's running example: the Windows Bluetooth driver (Figure 2).

Reproduces the three §2/§6 results end to end:

1. the read/write race on ``stoppingFlag`` (found with ``ts`` bound 0),
2. the reference-counting assertion violation (missed at bound 0, found
   at bound 1 — the ``ts`` knob trading coverage for cost),
3. the fixed driver (interlocked test-and-increment) checking clean.

Run:  python examples/bluetooth_driver.py
"""

from repro.core.checker import Kiss
from repro.core.race import RaceTarget
from repro.drivers import (
    DEVICE_EXTENSION,
    bluetooth_fixed_program,
    bluetooth_program,
)


def main() -> None:
    print("=== 1. race detection on stoppingFlag (ts = 0) ===")
    kiss0 = Kiss(max_ts=0)
    race = kiss0.check_race(
        bluetooth_program(), RaceTarget.field_of(DEVICE_EXTENSION, "stoppingFlag")
    )
    print(f"verdict: {race.summary()}")
    first, second = race.concurrent_trace.access_steps()
    print(f"  first access  (recorded): thread {first.tid}: {first.text}")
    print(f"  second access (conflict): thread {second.tid}: {second.text}")

    print("\n=== 2. reference-counting assertion ===")
    for bound in (0, 1):
        r = Kiss(max_ts=bound).check_assertions(bluetooth_program())
        print(f"ts bound {bound}: {r.verdict}"
              + (f" ({r.error_kind})" if r.is_error else ""))
    r1 = Kiss(max_ts=1).check_assertions(bluetooth_program())
    print("\nmapped concurrent trace of the violation:")
    print(r1.concurrent_trace.format())

    print("\n=== 3. the fixed driver ===")
    fixed = Kiss(max_ts=1).check_assertions(bluetooth_fixed_program())
    print(f"fixed BCSP_IoIncrement: {fixed.verdict}")

    print("\n=== per-field race summary (the paper's per-field loop) ===")
    results = kiss0.check_races_on_struct(bluetooth_program(), DEVICE_EXTENSION)
    for field, res in results.items():
        print(f"  {DEVICE_EXTENSION}.{field:15s} {res.verdict}"
              + (f" ({res.error_kind})" if res.is_error else ""))


if __name__ == "__main__":
    main()
