#!/usr/bin/env python3
"""Quickstart: check a small concurrent program with KISS.

The program below has the classic unprotected-flag bug: ``worker`` may
set ``stopping`` between main's check and its assert.  KISS
sequentializes the program (Figure 4 of the paper) and hands it to a
checker that only understands sequential semantics; the error trace is
then mapped back to a concurrent interleaving.

Run:  python examples/quickstart.py
"""

from repro import parse
from repro.core.checker import Kiss

SOURCE = """
bool stopping;

void worker() {
    stopping = true;
}

void main() {
    async worker();
    if (!stopping) {
        // ... the worker may run right here ...
        assert(!stopping);
    }
}
"""


def main() -> None:
    program = parse(SOURCE)

    # max_ts is the paper's coverage knob: how many forked threads may be
    # parked for later resumption.  This bug needs the worker to run
    # *between* main's check and its assert, so the worker must be parked
    # and dispatched mid-flight: bound 1 is required (bound 0 would run
    # the worker to completion at the fork point and miss it).
    kiss = Kiss(max_ts=1)
    result = kiss.check_assertions(program)
    assert result.is_error, "expected the race-induced assertion failure"

    print(f"verdict: {result.verdict}")
    if result.is_error:
        print(f"error kind: {result.error_kind}")
        print("concurrent error trace (thread: statement):")
        print(result.concurrent_trace.format())
        threads = result.concurrent_trace.threads()
        print(f"\nthreads involved: {threads}")
    stats = result.backend_result.stats
    print(f"\nsequential backend explored {stats.states} states")


if __name__ == "__main__":
    main()
