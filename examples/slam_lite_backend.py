#!/usr/bin/env python3
"""The SLAM-lite tier: predicate abstraction + Bebop + CEGAR.

The paper builds KISS on SLAM; this reproduction ships a SLAM-lite
backend for the scalar fragment: bit-blasting decision procedure over a
hand-rolled DPLL solver, predicate abstraction into boolean programs,
an RHS summary-based reachability engine (Bebop's role), and the CEGAR
refinement loop (Newton's role).

The third program demonstrates *divergence*: proving it needs an
unbounded family of predicates, so refinement hits the round limit —
this is the property-dependent resource-bound behaviour behind the
"neither race nor no-race" entries of the paper's Table 1.

Run:  python examples/slam_lite_backend.py
"""

from repro import parse_core
from repro.seqcheck.cegar import check_cegar

PROGRAMS = {
    "provable": """
        int balance;
        void main() {
          balance = 10;
          balance = balance - 4;
          balance = balance - 6;
          assert(balance == 0);
        }
    """,
    "buggy": """
        int x; int y;
        void main() {
          x = 0 - 3;
          if (x > 0) { y = 1; } else { y = 2; }
          assert(y == 1);
        }
    """,
    "diverging": """
        int g;
        void main() {
          g = 0;
          iter { g = g + 2; }
          assert(g != 25);
        }
    """,
}


def main() -> None:
    for name, src in PROGRAMS.items():
        result = check_cegar(parse_core(src), max_rounds=6)
        print(f"{name:10s} -> {result.status:9s} "
              f"(rounds: {result.rounds}, predicates: {result.predicates})")
        if result.is_error and result.witness:
            interesting = {k: v for k, v in result.witness.items() if "#0" in k or "#1" in k}
            print(f"{'':13s}witness (first versions): {interesting}")
        if result.status == "diverged":
            print(f"{'':13s}{result.message}")


if __name__ == "__main__":
    main()
